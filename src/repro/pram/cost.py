"""Fork-join work/depth cost ledger.

The paper analyzes all algorithms in the *work-depth* model (Section 2):
``work`` is the total operation count and ``depth`` is the longest chain
of sequential dependencies.  Because CPython's GIL makes wall-clock
speedup unobservable, this module is the reproduction's measuring
instrument: primitives charge their analytic work/depth as they execute,
and benchmarks compare the accumulated charges against the theorems.

Semantics
---------
* Sequential composition: ``charge(w1, d1); charge(w2, d2)`` accumulates
  ``work = w1 + w2``, ``depth = d1 + d2``.
* Parallel composition: inside ``with parallel() as par``, each
  ``par.run(fn)`` executes under a *fresh child ledger*; when the region
  closes, the parent is charged ``work = sum(child work)`` and
  ``depth = max(child depth)`` — the fork-join rule.

The ambient ledger is held in a :class:`contextvars.ContextVar`, so the
instrumentation is thread-safe and nests correctly: library code simply
calls :func:`charge` and composes regions without threading a ledger
through every signature.  When no ledger is active the charge is dropped
(near-zero overhead), so production use of the data structures pays
almost nothing for the instrumentation.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "Cost",
    "CostLedger",
    "ParallelRegion",
    "charge",
    "current_ledger",
    "measured",
    "parallel",
    "tracking",
]


@dataclass(frozen=True)
class Cost:
    """An immutable (work, depth) pair.

    Supports the two composition rules of the model:

    * ``a + b``  — sequential composition (work and depth both add).
    * ``a | b``  — parallel composition (work adds, depth maxes).
    """

    work: int = 0
    depth: int = 0

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.work + other.work, self.depth + other.depth)

    def __or__(self, other: "Cost") -> "Cost":
        return Cost(self.work + other.work, max(self.depth, other.depth))

    def __bool__(self) -> bool:
        return self.work != 0 or self.depth != 0


class CostLedger:
    """Mutable accumulator of work/depth under sequential composition.

    With ``record=True`` the ledger additionally captures the fork-join
    *trace* — the sequence of primitive charges and parallel blocks —
    which :mod:`repro.pram.schedule` replays on a simulated p-processor
    machine to predict parallel running times (the substitution for
    wall-clock speedup this host cannot measure; see DESIGN.md).
    """

    __slots__ = ("work", "depth", "trace")

    def __init__(self, record: bool = False) -> None:
        self.work: int = 0
        self.depth: int = 0
        #: When recording: list of ``("c", work, depth)`` charge items
        #: and ``("p", [strand traces])`` parallel blocks, in program
        #: order.  ``None`` when recording is off.
        self.trace: list | None = [] if record else None

    @property
    def recording(self) -> bool:
        return self.trace is not None

    def charge(self, work: int, depth: int = 1) -> None:
        """Charge a primitive step: ``work`` operations on a critical
        path of length ``depth``."""
        if work < 0 or depth < 0:
            raise ValueError(f"negative cost charge: work={work} depth={depth}")
        self.work += int(work)
        self.depth += int(depth)
        if self.trace is not None:
            self.trace.append(("c", int(work), int(depth)))

    def merge_parallel(
        self, children: list[Cost], traces: list[list] | None = None
    ) -> None:
        """Fold the costs of concurrently-executed children into this
        ledger using the fork-join rule."""
        if not children:
            return
        self.work += sum(c.work for c in children)
        self.depth += max(c.depth for c in children)
        if self.trace is not None:
            self.trace.append(("p", traces if traces is not None else []))

    def snapshot(self) -> Cost:
        return Cost(self.work, self.depth)

    # ------------------------------------------------------------------
    # Checkpoint/restore (repro.resilience): a ledger's accumulated
    # charges — and its fork-join trace, when recording — are part of
    # the driver state a checkpoint must reproduce exactly.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "kind": "cost_ledger",
            "version": 1,
            "work": self.work,
            "depth": self.depth,
            "trace": self.trace,
        }

    def load_state(self, state: dict) -> None:
        if state.get("kind") != "cost_ledger":
            raise ValueError(f"not a cost_ledger state: {state.get('kind')!r}")
        self.work = int(state["work"])
        self.depth = int(state["depth"])
        trace = state["trace"]
        self.trace = _as_trace(trace) if trace is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostLedger(work={self.work}, depth={self.depth})"


def _as_trace(items: list) -> list:
    """Normalize a deserialized trace back into tuple entries."""
    out: list = []
    for entry in items:
        entry = tuple(entry)
        if entry[0] == "p":
            out.append(("p", [_as_trace(strand) for strand in entry[1]]))
        else:
            out.append(("c", int(entry[1]), int(entry[2])))
    return out


_LEDGER: contextvars.ContextVar[CostLedger | None] = contextvars.ContextVar(
    "repro_pram_ledger", default=None
)


def current_ledger() -> CostLedger | None:
    """The ambient ledger, or ``None`` when cost tracking is off."""
    return _LEDGER.get()


def charge(work: int, depth: int = 1) -> None:
    """Charge the ambient ledger, if any."""
    ledger = _LEDGER.get()
    if ledger is not None:
        ledger.charge(work, depth)


@contextmanager
def tracking(
    ledger: CostLedger | None = None, *, record: bool = False
) -> Iterator[CostLedger]:
    """Install ``ledger`` (a fresh one by default) as the ambient ledger.

    ``record=True`` captures the fork-join trace for the schedule
    simulator (:mod:`repro.pram.schedule`).

    >>> with tracking() as led:
    ...     charge(10, 1)
    >>> led.work
    10
    """
    if ledger is None:
        ledger = CostLedger(record=record)
    token = _LEDGER.set(ledger)
    try:
        yield ledger
    finally:
        _LEDGER.reset(token)


@contextmanager
def measured() -> Iterator[Callable[[], Cost]]:
    """Measure the cost of a block under the *current* ledger.

    Yields a zero-arg callable returning the cost accrued so far inside
    the block.  If no ledger is active, a temporary one is installed so
    the measurement still works.

    >>> with tracking():
    ...     with measured() as get:
    ...         charge(5, 2)
    ...     c = get()
    >>> (c.work, c.depth)
    (5, 2)
    """
    ledger = _LEDGER.get()
    if ledger is None:
        with tracking() as ledger:
            start = ledger.snapshot()
            yield lambda: Cost(ledger.work - start.work, ledger.depth - start.depth)
    else:
        start = ledger.snapshot()
        yield lambda: Cost(ledger.work - start.work, ledger.depth - start.depth)


class ParallelRegion:
    """Collects tasks whose costs combine with fork-join semantics.

    Tasks run immediately (in program order) but each under its own
    child ledger; the parent is charged sum-work / max-depth when the
    region exits.  An optional *backend* (see :mod:`repro.pram.backend`)
    may run the closures on real threads instead; the cost accounting is
    identical either way.
    """

    def __init__(self, parent: CostLedger | None) -> None:
        self._parent = parent
        self._children: list[Cost] = []
        self._traces: list[list] = []
        self._closed = False
        self._recording = parent is not None and parent.recording

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute ``fn`` as one parallel strand and return its result."""
        if self._closed:
            raise RuntimeError("parallel region already closed")
        child = CostLedger(record=self._recording)
        token = _LEDGER.set(child)
        try:
            result = fn(*args, **kwargs)
        finally:
            _LEDGER.reset(token)
        self._children.append(child.snapshot())
        if self._recording:
            self._traces.append(child.trace or [])
        return result

    def charge_strand(self, work: int, depth: int = 1) -> None:
        """Record a strand's cost without running a closure (used when a
        vectorized kernel already did the parallel step's data work)."""
        if self._closed:
            raise RuntimeError("parallel region already closed")
        self._children.append(Cost(work, depth))
        if self._recording:
            self._traces.append([("c", int(work), int(depth))])

    @property
    def strand_costs(self) -> list[Cost]:
        return list(self._children)

    def _close(self) -> None:
        self._closed = True
        if self._parent is not None:
            self._parent.merge_parallel(
                self._children, self._traces if self._recording else None
            )


@contextmanager
def parallel() -> Iterator[ParallelRegion]:
    """Open a fork-join parallel region on the ambient ledger.

    >>> with tracking() as led:
    ...     with parallel() as par:
    ...         _ = par.run(charge, 100, 4)
    ...         _ = par.run(charge, 50, 9)
    >>> (led.work, led.depth)
    (150, 9)
    """
    region = ParallelRegion(_LEDGER.get())
    try:
        yield region
    finally:
        region._close()
