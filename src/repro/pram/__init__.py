"""Work-depth (PRAM) parallel runtime substrate.

This package provides the execution substrate the SPAA'14 paper assumes:
a CRCW-style machine whose algorithms are analyzed in the *work-depth*
model.  Every primitive here performs its real (NumPy-vectorized) data
movement and simultaneously charges an explicit cost ledger with
fork-join semantics — sequential composition adds depth, parallel
composition takes the max depth and the sum of work.  Benchmarks verify
the measured work/depth against the paper's theorems.

Modules
-------
arena       high-water scratch buffers reused across minibatches
cost        fork-join work/depth ledger and ambient-ledger plumbing
primitives  map / reduce / scan / pack / concat data-parallel kernels
sort        linear-work stable integer sort (Theorem 2.2 stand-in)
hashing     k-wise independent polynomial hash families
histogram   buildHist (Theorem 2.3)
css         compacted stream segments (Lemma 2.1) and sift (Lemma 5.9)
select      parallel rank selection (prune cutoff, Lemma 5.3)
backend     serial and thread-pool fork-join execution backends

Every primitive is additionally wrapped in a named observability span
(``pram.<primitive>``, see docs/observability.md): when a
:class:`~repro.observability.spans.SpanTracer` is active, each call
records its ledger work/depth delta alongside measured wall-clock, and
installs its name as the ambient charge label so the ledger's
``by_operator`` attribution stays exact.  With no tracer the wrapper
is a single ContextVar read.
"""

from repro.pram.arena import BatchArena
from repro.pram.backend import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    fork_join,
    shard_ingest,
)
from repro.pram.cost import (
    Cost,
    CostLedger,
    charge,
    current_ledger,
    measured,
    parallel,
    tracking,
)
from repro.pram.css import CSS, css_of_bits, css_concat, sift
from repro.pram.hashing import KWiseHash, MERSENNE_P
from repro.pram.histogram import (
    HistArrays,
    build_hist,
    build_hist_arrays,
    build_hist_collectbin,
    build_hist_vectorized,
)
from repro.pram.plan import HASH_MEMO_CAP, PreparedBatch, fold_key
from repro.pram.primitives import (
    pack,
    par_concat,
    par_filter,
    par_map,
    prefix_sum,
    reduce_add,
    reduce_max,
    reduce_min,
)
from repro.pram.schedule import simulate, speedup_curve, trace_summary
from repro.pram.select import rank_select, prune_cutoff
from repro.pram.sort import int_sort, int_sort_by_key

__all__ = [
    "BatchArena",
    "Cost",
    "CostLedger",
    "charge",
    "current_ledger",
    "measured",
    "parallel",
    "tracking",
    "CSS",
    "css_of_bits",
    "css_concat",
    "sift",
    "KWiseHash",
    "MERSENNE_P",
    "HistArrays",
    "build_hist",
    "build_hist_arrays",
    "build_hist_collectbin",
    "build_hist_vectorized",
    "HASH_MEMO_CAP",
    "PreparedBatch",
    "fold_key",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "fork_join",
    "shard_ingest",
    "pack",
    "par_concat",
    "par_filter",
    "par_map",
    "prefix_sum",
    "reduce_add",
    "reduce_max",
    "reduce_min",
    "simulate",
    "speedup_curve",
    "trace_summary",
    "rank_select",
    "prune_cutoff",
    "int_sort",
    "int_sort_by_key",
]
