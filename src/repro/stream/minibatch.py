"""Discretized-stream (minibatch) pipeline driver.

Section 1: the system divides the input stream into minibatches; the
algorithm processes each minibatch (in parallel, with no sequential
ingestion bottleneck) and updates a single shared data structure;
queries can be answered after any minibatch.

:class:`MinibatchDriver` wires a stream to one or more operators,
tracks the work/depth charged per batch on a fresh ledger, and records
wall-clock throughput — the numbers benchmark E14 reports.

Per-batch execution goes through the :mod:`repro.engine.graph` dataflow
DAG (source → prepare → operator fan-out → fold); executed serially the
DAG replays the classic linear loop call-for-call, so reports, ledgers,
and checkpoint states are bit-identical to the pre-engine driver
(``use_engine=False`` keeps the legacy loop around as the parity
comparator, asserted in ``tests/test_engine_graph.py``).  Handing the
driver an ``engine_backend`` schedules the operator fan-out as
fork-join strands over Serial/Thread/Process backends — charged
sum-work / max-depth, so per-batch depth reflects the parallel
schedule rather than the sequential visit order.

Resilience (docs/resilience.md): the driver optionally runs under a
fault-tolerant regime — a seeded :class:`~repro.resilience.FaultInjector`
mutates deliveries (duplicates are deduplicated by batch id, poisoned
payloads and retry-exhausted batches land in a bounded dead-letter
queue, crashes surface as :class:`~repro.resilience.InjectedCrash`), a
:class:`~repro.resilience.CheckpointManager` snapshots the full
driver/operator/ledger state every K processed batches, and per-sketch
invariant audits gate every recovery (and, with ``audit_every``, every
few batches), rolling back to the last checkpoint when they fail.

Elastic sharding (docs/resilience.md): constructed with ``shards=S``,
the driver routes every *mergeable* operator's ingest through an
:class:`~repro.resilience.ElasticShardedIngestor` — S parallel shard
strands per batch, folded on demand — and the shard count becomes a
runtime quantity: :meth:`rescale` (or a ``rescale_at`` schedule)
transitions it between batches via the checkpoint → k-ary re-fold →
repartition → resume protocol, and shard faults are replayed or
degraded per the ingestor's supervision rules.  Reshard hooks observe
every transition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol, Sequence

import numpy as np

from repro.concurrent.epoch import Snapshot, SnapshotStore
from repro.engine.fusion import FusedIngestPlan
from repro.engine.graph import DataflowGraph, operator_graph
from repro.observability.metrics import REGISTRY
from repro.observability.spans import span
from repro.pram.backend import Backend
from repro.pram.cost import CostLedger, current_ledger, tracking
from repro.pram.plan import PreparedBatch
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import (
    DeadLetterQueue,
    Delivery,
    FaultInjector,
    InjectedCrash,
    PoisonBatchError,
    RetryPolicy,
    TransientIngestError,
    validate_batch,
)
from repro.resilience.invariants import InvariantViolation, audit_operators
from repro.resilience.reshard import ElasticShardedIngestor, ReshardEvent
from repro.resilience.state import expect, header

__all__ = [
    "StreamOperator",
    "BatchReport",
    "MinibatchDriver",
    "QuarantineEvent",
]

# Driver metrics (catalog: docs/observability.md).
_M_BATCHES = REGISTRY.counter(
    "repro_batches_processed_total", "Minibatches fully processed"
)
_M_ITEMS = REGISTRY.counter(
    "repro_items_ingested_total", "Stream elements ingested across operators"
)
_M_WORK = REGISTRY.counter(
    "repro_work_charged_total", "Ledger work charged while processing batches"
)
_M_BATCH_SECONDS = REGISTRY.histogram(
    "repro_batch_seconds", "Wall-clock seconds per processed minibatch"
)
_M_BATCH_DEPTH = REGISTRY.gauge(
    "repro_batch_depth_last", "Ledger depth charged by the most recent batch"
)
_M_RETRIES = REGISTRY.counter(
    "repro_retries_total", "Transient ingest failures that were retried"
)
_M_DUPLICATES = REGISTRY.counter(
    "repro_duplicates_skipped_total", "Duplicate deliveries dropped by batch id"
)
_M_QUARANTINES = REGISTRY.counter(
    "repro_quarantines_total", "Audit failures that forced a rollback"
)
_M_RECOVERIES = REGISTRY.counter(
    "repro_recoveries_total", "Checkpoint recoveries performed"
)


class StreamOperator(Protocol):
    """Anything that can absorb a minibatch of stream elements.

    Every operator in :mod:`repro.core` and :mod:`repro.baselines`
    satisfies this protocol; core operators additionally expose
    ``ingest_prepared(plan)``, the shared-prework fast path the driver
    prefers (see :mod:`repro.pram.plan`).
    """

    def ingest(self, batch: np.ndarray) -> None:
        """Incorporate one minibatch into the operator's state."""
        ...

    def extend(self, batch: np.ndarray) -> None:
        """Alias of :meth:`ingest` (sequential-API compatibility)."""
        ...


@dataclass
class BatchReport:
    """Per-minibatch accounting produced by the driver."""

    index: int
    size: int
    work: int
    depth: int
    seconds: float
    query_results: dict[str, Any] = field(default_factory=dict)
    #: Source batch id (resilient runs; equals ``index`` otherwise).
    batch_id: int | None = None
    #: Fault the delivery carried, if any ("duplicate", "truncate", …).
    fault: str | None = None
    #: Ingest attempts it took (> 1 means transient failures + retries).
    attempts: int = 1

    @property
    def work_per_item(self) -> float:
        return self.work / self.size if self.size else 0.0


@dataclass(frozen=True)
class QuarantineEvent:
    """One audit failure that forced a rollback to the last checkpoint."""

    batch_index: int
    trigger_batch_id: int
    detail: str
    replayed: int


class MinibatchDriver:
    """Run a stream through operators, one minibatch at a time.

    Parameters
    ----------
    operators:
        Named operators; all receive every minibatch (a fan-out
        pipeline, like registering several continuous queries).
    query_every:
        If set, ``queries`` callbacks run after every ``query_every``
        batches — modelling the paper's interleaved updates/queries.
    queries:
        Named zero-arg callables evaluated at query points; results land
        in the corresponding :class:`BatchReport`.
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector`; its faulty
        delivery sequence replaces the pristine one.
    retry_policy:
        Optional :class:`~repro.resilience.RetryPolicy` for transient
        ingest failures; operator state is rolled back between attempts.
    dead_letter:
        Bounded :class:`~repro.resilience.DeadLetterQueue` for batches
        that are poison or exhaust their retries.  Auto-created when a
        fault injector or retry policy is supplied.
    checkpoint_manager:
        Optional :class:`~repro.resilience.CheckpointManager`; driver +
        operator + ledger state is snapshotted every ``manager.every``
        processed batches, and :meth:`recover` restores from it.
    audit_every:
        If set, run every operator's ``check_invariants()`` after each
        ``audit_every`` processed batches; a violation quarantines the
        offending batch and rolls back to the last checkpoint.
    use_engine:
        When True (default) each batch executes through the
        :func:`repro.engine.graph.operator_graph` dataflow DAG; when
        False, through the legacy inline loop.  Serially scheduled, the
        two are bit-identical — the flag exists so the parity tests can
        assert exactly that.
    engine_backend:
        Optional :class:`~repro.pram.backend.Backend`; with one set
        (and ``use_engine``), each DAG level's independent nodes run as
        one fork-join region, so per-batch depth is the max over
        operator strands instead of their sum.  Process backends
        require every operator to round-trip ``pickle`` (the worker's
        mutated copy is re-adopted via ``state_dict``/``load_state``
        when available, by replacement otherwise).
    fuse_kernels:
        When True, the engine graph runs one
        :class:`~repro.engine.fusion.FusedIngestPlan` kernel per batch:
        all fusable operators' hash rows evaluate in a single stacked
        Horner pass and their gathers collapse into one bincount, with
        arena-reused scratch — states and charged ledger totals stay
        bit-identical to the serial path (asserted by the ``fused``
        fuzz relation and bench E18).  Default ``None`` auto-enables
        fusion when it applies cleanly: serial in-process engine
        execution (``use_engine=True``, no ``engine_backend``, no
        ``shards``) with ``share_prework`` and every operator
        preparable.  Explicit ``True`` with an incompatible
        configuration raises.
    shards:
        If set, route every mergeable operator (``fresh_clone`` +
        ``merge``) through an
        :class:`~repro.resilience.ElasticShardedIngestor` with this
        initial shard count; non-mergeable operators keep the plain
        ingest path.  At least one operator must be mergeable.  The
        sharded path replaces the engine DAG for those operators.
    shard_backend / shard_arity / shard_timeout / shard_retry:
        Forwarded to each ingestor (execution backend, fold arity,
        post-hoc stall threshold, replay policy).  A ``fault_injector``
        with ``shard_crash``/``shard_stall`` rates is shared with the
        ingestors automatically.
    rescale_at:
        ``{batch_index: new_shards}`` schedule applied at the start of
        the matching batch — the declarative form of :meth:`rescale`.
    min_shards:
        Degradation floor forwarded to each ingestor.
    concurrent_queries:
        When True, the driver owns a
        :class:`~repro.concurrent.epoch.SnapshotStore` and publishes a
        fresh epoch on every batch boundary — the point where operator
        state is the exact serial fold of everything ingested
        (docs/architecture.md, "Consistency model").  Readers on other
        threads use :meth:`snapshot` / :attr:`epoch` and never block
        the ingest path.  Incompatible with ``shards=``: shard partials
        fold lazily (at query/audit points), so mid-stream batch
        boundaries there do not carry total state.
    """

    def __init__(
        self,
        operators: Mapping[str, StreamOperator],
        *,
        query_every: int | None = None,
        queries: Mapping[str, Callable[[], Any]] | None = None,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
        dead_letter: DeadLetterQueue | None = None,
        checkpoint_manager: CheckpointManager | None = None,
        audit_every: int | None = None,
        share_prework: bool = True,
        use_engine: bool = True,
        engine_backend: Backend | None = None,
        fuse_kernels: bool | None = None,
        shards: int | None = None,
        shard_backend: Backend | None = None,
        shard_arity: int = 2,
        shard_timeout: float | None = None,
        shard_retry: RetryPolicy | None = None,
        rescale_at: Mapping[int, int] | None = None,
        min_shards: int = 1,
        concurrent_queries: bool = False,
    ) -> None:
        if not operators:
            raise ValueError("need at least one operator")
        if query_every is not None and query_every < 1:
            raise ValueError("query_every must be >= 1")
        if audit_every is not None and audit_every < 1:
            raise ValueError("audit_every must be >= 1")
        self.operators = dict(operators)
        self.query_every = query_every
        self.queries = dict(queries or {})
        self.reports: list[BatchReport] = []
        self._batch_index = 0
        #: Cumulative charged cost across all processed batches —
        #: checkpointed and restored with the rest of the driver state.
        self.ledger = CostLedger()

        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        if dead_letter is None and (fault_injector or retry_policy):
            dead_letter = DeadLetterQueue()
        self.dead_letter = dead_letter
        self.checkpoint_manager = checkpoint_manager
        self.audit_every = audit_every
        #: When True (default) the driver builds one PreparedBatch per
        #: minibatch and hands it to every operator exposing
        #: ``ingest_prepared``, so encode/hash/histogram prework is paid
        #: once per batch instead of once per operator.  Charged ledger
        #: totals are identical either way (repro.pram.plan replays the
        #: cached costs); only wall-clock changes.
        self.share_prework = share_prework
        self.use_engine = use_engine
        self.engine_backend = engine_backend
        fusable = (
            share_prework
            and use_engine
            and engine_backend is None
            and shards is None
            and all(
                hasattr(op, "ingest_prepared") for op in self.operators.values()
            )
        )
        if fuse_kernels is None:
            fuse_kernels = fusable
        elif fuse_kernels:
            if not share_prework:
                raise ValueError("fuse_kernels=True requires share_prework=True")
            if not use_engine:
                raise ValueError("fuse_kernels=True requires use_engine=True")
            if engine_backend is not None:
                raise ValueError(
                    "fuse_kernels=True requires serial in-process engine "
                    "execution (engine_backend=None)"
                )
            if shards is not None:
                raise ValueError("fuse_kernels=True is incompatible with shards=")
        self.fuse_kernels = bool(fuse_kernels)
        self._fusion = (
            FusedIngestPlan(self.operators) if self.fuse_kernels else None
        )
        self._graph: DataflowGraph | None = None

        if concurrent_queries and shards is not None:
            raise ValueError(
                "concurrent_queries=True is incompatible with shards= "
                "(shard partials fold lazily, so batch boundaries do not "
                "carry total state)"
            )
        #: Items folded across all processed batches — the prefix length
        #: each published epoch covers.
        self._items_seen = 0
        self.snapshots = (
            SnapshotStore(self.operators, name="driver")
            if concurrent_queries
            else None
        )

        self._processed_ids: set[int] = set()
        #: After-batch observers (see :meth:`add_hook`) — runtime-only
        #: probes, deliberately excluded from :meth:`state_dict`.
        self._hooks: list[Callable[["MinibatchDriver", BatchReport], None]] = []
        self._since_checkpoint: list[tuple[int, np.ndarray]] = []
        self.duplicates_skipped = 0
        self.retries = 0
        self.quarantines: list[QuarantineEvent] = []
        self.recoveries = 0

        # ---- elastic sharding --------------------------------------
        self.rescale_at = {int(k): int(v) for k, v in (rescale_at or {}).items()}
        if any(v < 1 for v in self.rescale_at.values()):
            raise ValueError("rescale_at shard counts must be >= 1")
        self._pending_shards: int | None = None
        self._shard_ingestors: dict[str, ElasticShardedIngestor] = {}
        self._reshard_hooks: list[
            Callable[["MinibatchDriver", str, ReshardEvent], None]
        ] = []
        #: Every (operator name, transition) observed, in batch order.
        self.reshard_events: list[tuple[str, ReshardEvent]] = []
        self._event_cursors: dict[str, int] = {}
        if shards is None:
            if self.rescale_at:
                raise ValueError("rescale_at requires shards=")
        else:
            if shards < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
            mergeable = {
                name: op
                for name, op in self.operators.items()
                if hasattr(op, "fresh_clone") and hasattr(op, "merge")
            }
            if not mergeable:
                raise ValueError(
                    "shards= needs at least one mergeable operator "
                    "(fresh_clone + merge); got none"
                )
            supervised = fault_injector is not None or shard_timeout is not None
            if self.dead_letter is None and supervised:
                self.dead_letter = DeadLetterQueue()
            for name, op in mergeable.items():
                self._shard_ingestors[name] = ElasticShardedIngestor(
                    op,
                    shards=shards,
                    backend=shard_backend,
                    arity=shard_arity,
                    retry=shard_retry,
                    timeout=shard_timeout,
                    injector=fault_injector,
                    dead_letter=self.dead_letter,
                    min_shards=min_shards,
                    label=name,
                )
                self._event_cursors[name] = 0

    def add_hook(
        self, hook: Callable[["MinibatchDriver", BatchReport], None]
    ) -> None:
        """Register an after-batch observer.

        Hooks run synchronously after each fully processed minibatch,
        as ``hook(driver, report)`` — the point where operator state is
        consistent, so a hook may snapshot ``state_dict()`` mid-stream
        (the fuzzer's checkpoint/restore probes, docs/testing.md).
        Hooks are runtime wiring, not state: they are not captured by
        :meth:`state_dict` and survive :meth:`load_state` untouched.
        """
        self._hooks.append(hook)

    # ------------------------------------------------------------------
    # Concurrent-query mode
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The latest published epoch (0 until the first batch lands).
        Requires ``concurrent_queries=True``."""
        if self.snapshots is None:
            raise ValueError(
                "driver has no snapshot store; construct with "
                "concurrent_queries=True"
            )
        return self.snapshots.epoch

    def snapshot(self) -> Snapshot:
        """The latest published batch-boundary snapshot — safe to probe
        from any thread while the driver keeps ingesting.  Requires
        ``concurrent_queries=True``."""
        if self.snapshots is None:
            raise ValueError(
                "driver has no snapshot store; construct with "
                "concurrent_queries=True"
            )
        return self.snapshots.read()

    def add_reshard_hook(
        self, hook: Callable[["MinibatchDriver", str, ReshardEvent], None]
    ) -> None:
        """Register a reshard observer, called as ``hook(driver, name,
        event)`` once per operator transition (requested rescales and
        degradations alike), after the batch that triggered it.  Like
        batch hooks, reshard hooks are runtime wiring, not state."""
        self._reshard_hooks.append(hook)

    # ------------------------------------------------------------------
    # Elastic sharding
    # ------------------------------------------------------------------
    @property
    def sharded(self) -> bool:
        return bool(self._shard_ingestors)

    def shard_counts(self) -> dict[str, int]:
        """Current shard count per sharded operator."""
        return {name: ing.shards for name, ing in self._shard_ingestors.items()}

    def rescale(self, new_shards: int) -> None:
        """Request a transition to ``new_shards``, applied at the start
        of the *next* processed batch (shard count only ever changes on
        a batch boundary, so every batch runs under one topology)."""
        if not self._shard_ingestors:
            raise ValueError("driver is not sharded; construct with shards=")
        if new_shards < 1:
            raise ValueError(f"new_shards must be >= 1, got {new_shards}")
        self._pending_shards = int(new_shards)

    def _apply_pending_rescale(self) -> None:
        target, reason = self._pending_shards, "requested"
        if target is None:
            target = self.rescale_at.get(self._batch_index)
            reason = "scheduled"
        if target is None:
            return
        self._pending_shards = None
        for ing in self._shard_ingestors.values():
            ing.rescale(target, reason=reason, batch_index=self._batch_index)

    def _sync_shards(self) -> None:
        """Fold outstanding per-shard state into every base operator so
        queries / audits / snapshots see totals.  Fold costs charge the
        cumulative ledger."""
        if not self._shard_ingestors:
            return
        with tracking(self.ledger):
            for ing in self._shard_ingestors.values():
                ing.sync()

    def _drain_reshard_events(self) -> None:
        for name, ing in self._shard_ingestors.items():
            cursor = self._event_cursors[name]
            for event in ing.events[cursor:]:
                self.reshard_events.append((name, event))
                for hook in self._reshard_hooks:
                    hook(self, name, event)
            self._event_cursors[name] = len(ing.events)

    @property
    def _resilient(self) -> bool:
        return (
            self.fault_injector is not None
            or self.retry_policy is not None
            or self.dead_letter is not None
            or self.checkpoint_manager is not None
            or self.audit_every is not None
        )

    # ------------------------------------------------------------------
    # Run loops
    # ------------------------------------------------------------------
    def run(
        self,
        stream: np.ndarray | Sequence[Any],
        batch_size: int,
        *,
        max_batches: int | None = None,
    ) -> list[BatchReport]:
        """Feed ``stream`` through all operators in ``batch_size`` chunks.

        Returns the per-batch reports (also appended to ``.reports``).
        In resilient mode batch ids are ``start // batch_size``, already
        -processed ids are skipped (exactly-once across crash/replay),
        and faults from the injector are handled as documented above.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        stream = np.asarray(stream)
        chunks = (
            (start // batch_size, stream[start : start + batch_size])
            for start in range(0, len(stream), batch_size)
        )
        if not self._resilient:
            new_reports: list[BatchReport] = []
            for _, batch in chunks:
                if max_batches is not None and len(new_reports) >= max_batches:
                    break
                new_reports.append(self._process(batch))
            self.reports.extend(new_reports)
            self._sync_shards()
            return new_reports
        return self._run_resilient(chunks, max_batches)

    def _run_resilient(
        self,
        chunks,
        max_batches: int | None,
    ) -> list[BatchReport]:
        deliveries = (
            self.fault_injector.deliveries(chunks)
            if self.fault_injector is not None
            else (Delivery(batch_id, payload) for batch_id, payload in chunks)
        )
        new_reports: list[BatchReport] = []
        for delivery in deliveries:
            if max_batches is not None and len(new_reports) >= max_batches:
                break
            if delivery.fault == "crash":
                raise InjectedCrash(delivery.batch_id)
            if delivery.batch_id in self._processed_ids:
                self.duplicates_skipped += 1
                _M_DUPLICATES.inc()
                continue
            try:
                validate_batch(delivery.payload)
            except PoisonBatchError as exc:
                self._to_dead_letter(delivery, f"poison: {exc}", attempts=0)
                continue

            report = self._ingest_with_retries(delivery)
            if report is None:
                continue  # exhausted retries; already dead-lettered
            new_reports.append(report)
            self._processed_ids.add(delivery.batch_id)
            self.reports.append(report)
            self._since_checkpoint.append((delivery.batch_id, delivery.payload))

            if self.audit_every and self._batch_index % self.audit_every == 0:
                self._audit_or_quarantine(delivery)
            if self.checkpoint_manager is not None:
                saved = self.checkpoint_manager.maybe_save(
                    self.state_dict(), self._batch_index
                )
                if saved is not None:
                    self._since_checkpoint = []
        self._sync_shards()
        return new_reports

    # ------------------------------------------------------------------
    def _process(self, batch: np.ndarray, delivery: Delivery | None = None) -> BatchReport:
        # Charge into the caller's ambient ledger when one is installed
        # (so profiling/measuring a whole run sees the driver's work and
        # per-operator attribution); fall back to a private per-batch
        # ledger otherwise.  Either way the report carries this batch's
        # delta.
        ledger = current_ledger() or CostLedger()
        work0, depth0 = ledger.work, ledger.depth
        t0 = time.perf_counter()
        with tracking(ledger), span("driver.batch", "driver"):
            if self._shard_ingestors:
                # Elastic path: pending rescales apply on the boundary,
                # then mergeable operators ingest through their shard
                # ingestors (supervised when configured) while the rest
                # keep the plain loop.  Shared prework still covers the
                # non-sharded operators.
                self._apply_pending_rescale()
                plan = (
                    PreparedBatch(batch)
                    if self.share_prework
                    and any(
                        name not in self._shard_ingestors
                        and hasattr(op, "ingest_prepared")
                        for name, op in self.operators.items()
                    )
                    else None
                )
                for name, op in self.operators.items():
                    ing = self._shard_ingestors.get(name)
                    if ing is not None:
                        ing.ingest(batch, batch_id=self._batch_index)
                    elif plan is not None and hasattr(op, "ingest_prepared"):
                        op.ingest_prepared(plan)
                    else:
                        op.ingest(batch)
                if self.query_every and (
                    (self._batch_index + 1) % self.query_every == 0
                ):
                    # Queries run right after this block; fold now so
                    # they see total state (and charge this batch).
                    for ing in self._shard_ingestors.values():
                        ing.sync()
            elif self.use_engine:
                # The DAG's serial schedule replays the legacy loop
                # below call-for-call (bit-identical charges); with an
                # engine_backend, operator nodes run as fork-join
                # strands instead.
                ctx = self._engine_graph().execute(
                    {"source": batch}, backend=self.engine_backend
                )
                if self.engine_backend is not None:
                    self._adopt_folded(ctx["fold"])
            else:
                plan = PreparedBatch(batch) if self.share_prework else None
                for op in self.operators.values():
                    if plan is not None and hasattr(op, "ingest_prepared"):
                        op.ingest_prepared(plan)
                    else:
                        op.ingest(batch)
        elapsed = time.perf_counter() - t0
        work, depth = ledger.work - work0, ledger.depth - depth0
        _M_BATCHES.inc()
        _M_ITEMS.inc(int(len(batch)))
        _M_WORK.inc(work)
        _M_BATCH_SECONDS.observe(elapsed)
        _M_BATCH_DEPTH.set(depth)
        report = BatchReport(
            index=self._batch_index,
            size=int(len(batch)),
            work=work,
            depth=depth,
            seconds=elapsed,
            batch_id=delivery.batch_id if delivery else None,
            fault=delivery.fault if delivery else None,
        )
        self.ledger.charge(ledger.work, ledger.depth)
        if self.query_every and (self._batch_index + 1) % self.query_every == 0:
            report.query_results = {name: q() for name, q in self.queries.items()}
        self._batch_index += 1
        self._items_seen += int(len(batch))
        if self.snapshots is not None:
            # Batch boundary: operator state is the exact fold of the
            # first `_items_seen` items, so the published snapshot is
            # bit-identical to a serial fold of that prefix.
            self.snapshots.publish(items=self._items_seen)
        self._drain_reshard_events()
        for hook in self._hooks:
            hook(self, report)
        return report

    def _engine_graph(self) -> DataflowGraph:
        """The per-batch dataflow DAG, built once per operator set."""
        if self._graph is None:
            self._graph = operator_graph(
                self.operators,
                share_prework=self.share_prework,
                fusion=self._fusion,
            )
        return self._graph

    def _adopt_folded(self, folded: Mapping[str, Any]) -> None:
        """Re-adopt operators returned by a scheduled graph execution.

        In-process backends mutate the driver's own operator objects
        (nothing to do); a process backend returns the worker's mutated
        copies, whose state is copied back — or, for operators without
        the state codec, swapped in wholesale."""
        for name, result in folded.items():
            op = self.operators[name]
            if result is op:
                continue
            if hasattr(op, "load_state") and hasattr(result, "state_dict"):
                op.load_state(result.state_dict())
            else:
                self.operators[name] = result
                self._graph = None  # node closures hold the old object

    def _ingest_with_retries(self, delivery: Delivery) -> BatchReport | None:
        """Process one delivery under the retry policy; ``None`` means the
        batch exhausted its retries and went to the dead-letter queue."""
        policy = self.retry_policy
        attempts_allowed = policy.max_attempts if policy else 1
        # Roll back operator state between attempts so a failed ingest
        # can never leave a half-applied batch behind.
        baseline = self._operator_states() if attempts_allowed > 1 else None
        last_error: Exception | None = None
        for attempt in range(attempts_allowed):
            try:
                if self.fault_injector is not None and (
                    self.fault_injector.should_fail_transiently(
                        delivery.batch_id, attempt
                    )
                ):
                    raise TransientIngestError(
                        f"injected transient failure, batch {delivery.batch_id} "
                        f"attempt {attempt}"
                    )
                report = self._process(delivery.payload, delivery)
                report.attempts = attempt + 1
                return report
            except InvariantViolation:
                raise
            except Exception as exc:  # noqa: BLE001 - retry boundary
                last_error = exc
                if baseline is not None:
                    self._restore_operator_states(baseline)
                if attempt + 1 < attempts_allowed:
                    self.retries += 1
                    _M_RETRIES.inc()
                    if policy is not None:
                        policy.backoff(attempt)
        self._to_dead_letter(
            delivery,
            f"retries exhausted: {last_error}",
            attempts=attempts_allowed,
        )
        return None

    def _to_dead_letter(self, delivery: Delivery, reason: str, attempts: int) -> None:
        if self.dead_letter is None:
            self.dead_letter = DeadLetterQueue()
        self.dead_letter.push(delivery.batch_id, delivery.payload, reason, attempts)

    # ------------------------------------------------------------------
    # Audits, quarantine, recovery
    # ------------------------------------------------------------------
    def audit(self) -> list[str]:
        """Run every operator's invariant check; raises
        :class:`~repro.resilience.InvariantViolation` on failure.
        Sharded operators fold first so the audit sees total state."""
        self._sync_shards()
        return audit_operators(self.operators)

    def _audit_or_quarantine(self, delivery: Delivery) -> None:
        try:
            self.audit()
            return
        except InvariantViolation as violation:
            manager = self.checkpoint_manager
            latest = manager.load_latest() if manager is not None else None
            if latest is None:
                raise  # fail-stop: nothing safe to roll back to
            # Quarantine the triggering batch; replay the rest of the
            # post-checkpoint suffix on top of the restored state.
            replay = [
                (bid, payload)
                for bid, payload in self._since_checkpoint
                if bid != delivery.batch_id
            ]
            quarantined = delivery
            self.load_state(latest["state"])
            self._to_dead_letter(quarantined, f"quarantined: {violation}", attempts=1)
            replayed = 0
            for bid, payload in replay:
                if bid in self._processed_ids:
                    continue
                report = self._process(payload, Delivery(bid, payload))
                self.reports.append(report)
                self._processed_ids.add(bid)
                self._since_checkpoint.append((bid, payload))
                replayed += 1
            _M_QUARANTINES.inc()
            self.quarantines.append(
                QuarantineEvent(
                    batch_index=self._batch_index,
                    trigger_batch_id=delivery.batch_id,
                    detail=str(violation),
                    replayed=replayed,
                )
            )
            self.audit()  # replay must restore a healthy state

    def recover(self, manager: CheckpointManager | None = None) -> int | None:
        """Restore driver + operator + ledger state from the latest
        intact checkpoint and audit every operator.

        Returns the batch index the checkpoint was taken at, or ``None``
        when no checkpoint exists (state untouched).  Rerunning ``run``
        over the same stream afterwards skips already-processed batch
        ids, so recovery is replay-safe.
        """
        manager = manager or self.checkpoint_manager
        if manager is None:
            raise ValueError("no checkpoint manager to recover from")
        latest = manager.load_latest()
        if latest is None:
            return None
        self.load_state(latest["state"])
        self.recoveries += 1
        _M_RECOVERIES.inc()
        self.audit()
        return int(latest["batch_index"])

    # ------------------------------------------------------------------
    # Checkpoint/restore
    # ------------------------------------------------------------------
    def _operator_states(self) -> dict[str, dict] | None:
        # Partials fold first so a base operator's state *is* its total
        # state — snapshots and rollback baselines stay self-contained.
        self._sync_shards()
        states: dict[str, dict] = {}
        for name, op in self.operators.items():
            save = getattr(op, "state_dict", None)
            if save is None:
                return None  # an opaque operator: no rollback possible
            states[name] = save()
        return states

    def _restore_operator_states(self, states: dict[str, dict]) -> None:
        for name, state in states.items():
            self.operators[name].load_state(state)
            ing = self._shard_ingestors.get(name)
            if ing is not None:
                # The snapshot holds the synced total; any partials
                # accumulated since (e.g. by a half-applied attempt)
                # must not fold back in on top of it.
                ing.discard_partials()

    def state_dict(self) -> dict:
        """Full driver snapshot: progress, reports, cumulative ledger,
        every operator's state, and the dead-letter queue."""
        operators = self._operator_states()
        if operators is None:
            missing = [
                name
                for name, op in self.operators.items()
                if not hasattr(op, "state_dict")
            ]
            raise TypeError(
                f"operators {missing} do not support state_dict(); "
                "checkpointing needs every operator to be serializable"
            )
        return {
            **header("minibatch_driver"),
            "batch_index": self._batch_index,
            "processed_ids": sorted(self._processed_ids),
            "duplicates_skipped": self.duplicates_skipped,
            "retries": self.retries,
            "ledger": self.ledger.state_dict(),
            "reports": [
                {
                    "index": r.index,
                    "size": r.size,
                    "work": r.work,
                    "depth": r.depth,
                    "seconds": r.seconds,
                    "query_results": r.query_results,
                    "batch_id": r.batch_id,
                    "fault": r.fault,
                    "attempts": r.attempts,
                }
                for r in self.reports
            ],
            "operators": operators,
            "dead_letter": self.dead_letter.state_dict() if self.dead_letter else None,
            "shards": (
                {name: ing.shards for name, ing in self._shard_ingestors.items()}
                if self._shard_ingestors
                else None
            ),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        expect(state, "minibatch_driver")
        self._batch_index = int(state["batch_index"])
        self._processed_ids = {int(i) for i in state["processed_ids"]}
        self.duplicates_skipped = int(state["duplicates_skipped"])
        self.retries = int(state["retries"])
        self.ledger.load_state(state["ledger"])
        self.reports = [
            BatchReport(
                index=int(r["index"]),
                size=int(r["size"]),
                work=int(r["work"]),
                depth=int(r["depth"]),
                seconds=float(r["seconds"]),
                query_results=dict(r["query_results"]),
                batch_id=None if r["batch_id"] is None else int(r["batch_id"]),
                fault=r["fault"],
                attempts=int(r["attempts"]),
            )
            for r in state["reports"]
        ]
        saved_ops = state["operators"]
        if saved_ops.keys() != self.operators.keys():
            raise ValueError(
                f"checkpoint operators {sorted(saved_ops)} do not match "
                f"driver operators {sorted(self.operators)}"
            )
        self._restore_operator_states(saved_ops)
        if state["dead_letter"] is not None:
            if self.dead_letter is None:
                self.dead_letter = DeadLetterQueue()
            self.dead_letter.load_state(state["dead_letter"])
        # Pre-elastic snapshots have no "shards" key; current drivers
        # restore each ingestor's topology (the bases were restored with
        # total state above, so repartitioning is fresh-clone only).
        shard_counts = state.get("shards") or {}
        for name, ing in self._shard_ingestors.items():
            ing.discard_partials()
            if name in shard_counts:
                ing.set_shards(int(shard_counts[name]))
        self._since_checkpoint = []
        self._items_seen = sum(r.size for r in self.reports)
        if self.snapshots is not None:
            # Concurrent readers must never see pre-restore state again.
            self.snapshots.publish(items=self._items_seen)

    # ------------------------------------------------------------------
    # Aggregate statistics over all processed batches.
    # ------------------------------------------------------------------
    def total_items(self) -> int:
        return sum(r.size for r in self.reports)

    def total_work(self) -> int:
        return sum(r.work for r in self.reports)

    def max_depth(self) -> int:
        return max((r.depth for r in self.reports), default=0)

    def mean_work_per_item(self) -> float:
        items = self.total_items()
        return self.total_work() / items if items else 0.0

    def throughput_items_per_sec(self) -> float:
        secs = sum(r.seconds for r in self.reports)
        return self.total_items() / secs if secs > 0 else float("inf")
