"""Discretized-stream (minibatch) pipeline driver.

Section 1: the system divides the input stream into minibatches; the
algorithm processes each minibatch (in parallel, with no sequential
ingestion bottleneck) and updates a single shared data structure;
queries can be answered after any minibatch.

:class:`MinibatchDriver` wires a stream to one or more operators,
tracks the work/depth charged per batch on a fresh ledger, and records
wall-clock throughput — the numbers benchmark E14 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol, Sequence

import numpy as np

from repro.pram.cost import CostLedger, tracking

__all__ = ["StreamOperator", "BatchReport", "MinibatchDriver"]


class StreamOperator(Protocol):
    """Anything that can absorb a minibatch of stream elements."""

    def ingest(self, batch: np.ndarray) -> None:
        """Incorporate one minibatch into the operator's state."""
        ...


@dataclass
class BatchReport:
    """Per-minibatch accounting produced by the driver."""

    index: int
    size: int
    work: int
    depth: int
    seconds: float
    query_results: dict[str, Any] = field(default_factory=dict)

    @property
    def work_per_item(self) -> float:
        return self.work / self.size if self.size else 0.0


class MinibatchDriver:
    """Run a stream through operators, one minibatch at a time.

    Parameters
    ----------
    operators:
        Named operators; all receive every minibatch (a fan-out
        pipeline, like registering several continuous queries).
    query_every:
        If set, ``queries`` callbacks run after every ``query_every``
        batches — modelling the paper's interleaved updates/queries.
    queries:
        Named zero-arg callables evaluated at query points; results land
        in the corresponding :class:`BatchReport`.
    """

    def __init__(
        self,
        operators: Mapping[str, StreamOperator],
        *,
        query_every: int | None = None,
        queries: Mapping[str, Callable[[], Any]] | None = None,
    ) -> None:
        if not operators:
            raise ValueError("need at least one operator")
        if query_every is not None and query_every < 1:
            raise ValueError("query_every must be >= 1")
        self.operators = dict(operators)
        self.query_every = query_every
        self.queries = dict(queries or {})
        self.reports: list[BatchReport] = []
        self._batch_index = 0

    def run(
        self,
        stream: np.ndarray | Sequence[Any],
        batch_size: int,
        *,
        max_batches: int | None = None,
    ) -> list[BatchReport]:
        """Feed ``stream`` through all operators in ``batch_size`` chunks.

        Returns the per-batch reports (also appended to ``.reports``).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        stream = np.asarray(stream)
        new_reports: list[BatchReport] = []
        for start in range(0, len(stream), batch_size):
            if max_batches is not None and len(new_reports) >= max_batches:
                break
            batch = stream[start : start + batch_size]
            new_reports.append(self._process(batch))
        self.reports.extend(new_reports)
        return new_reports

    def _process(self, batch: np.ndarray) -> BatchReport:
        ledger = CostLedger()
        t0 = time.perf_counter()
        with tracking(ledger):
            for op in self.operators.values():
                op.ingest(batch)
        elapsed = time.perf_counter() - t0
        report = BatchReport(
            index=self._batch_index,
            size=int(len(batch)),
            work=ledger.work,
            depth=ledger.depth,
            seconds=elapsed,
        )
        if self.query_every and (self._batch_index + 1) % self.query_every == 0:
            report.query_results = {name: q() for name, q in self.queries.items()}
        self._batch_index += 1
        return report

    # ------------------------------------------------------------------
    # Aggregate statistics over all processed batches.
    # ------------------------------------------------------------------
    def total_items(self) -> int:
        return sum(r.size for r in self.reports)

    def total_work(self) -> int:
        return sum(r.work for r in self.reports)

    def max_depth(self) -> int:
        return max((r.depth for r in self.reports), default=0)

    def mean_work_per_item(self) -> float:
        items = self.total_items()
        return self.total_work() / items if items else 0.0

    def throughput_items_per_sec(self) -> float:
        secs = sum(r.seconds for r in self.reports)
        return self.total_items() / secs if secs > 0 else float("inf")
