"""Exact reference aggregates (ground truth for every accuracy check).

These oracles store the whole window — exactly the cost the paper's
synopses avoid — and answer queries exactly.  Every accuracy assertion
in tests and every max-error column in the benchmarks compares a
synopsis estimate against one of these.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Hashable, Iterable

import numpy as np

__all__ = [
    "ExactWindowCounter",
    "ExactWindowSum",
    "ExactWindowFrequencies",
    "ExactInfiniteFrequencies",
]


class ExactWindowCounter:
    """Exact number of 1s in the last ``n`` bits (basic counting oracle)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("window size must be >= 1")
        self.n = n
        self._bits: deque[int] = deque()
        self._count = 0
        self.t = 0

    def extend(self, bits: Iterable[int] | np.ndarray) -> None:
        for b in np.asarray(bits, dtype=np.int64):
            b = int(b)
            if b not in (0, 1):
                raise ValueError(f"bit stream entry must be 0/1, got {b}")
            self._bits.append(b)
            self._count += b
            if len(self._bits) > self.n:
                self._count -= self._bits.popleft()
            self.t += 1

    def query(self) -> int:
        """Exact m = number of 1s in W_n(S_t)."""
        return self._count


class ExactWindowSum:
    """Exact sum of the last ``n`` nonnegative integers."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("window size must be >= 1")
        self.n = n
        self._vals: deque[int] = deque()
        self._sum = 0
        self.t = 0

    def extend(self, values: Iterable[int] | np.ndarray) -> None:
        for v in np.asarray(values, dtype=np.int64):
            v = int(v)
            if v < 0:
                raise ValueError(f"sum stream entries must be >= 0, got {v}")
            self._vals.append(v)
            self._sum += v
            if len(self._vals) > self.n:
                self._sum -= self._vals.popleft()
            self.t += 1

    def query(self) -> int:
        return self._sum


class ExactWindowFrequencies:
    """Exact per-item frequencies within the last ``n`` items."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("window size must be >= 1")
        self.n = n
        self._items: deque[Hashable] = deque()
        self._counts: Counter = Counter()
        self.t = 0

    def extend(self, items: Iterable[Hashable] | np.ndarray) -> None:
        for item in items:
            item = item.item() if isinstance(item, np.generic) else item
            self._items.append(item)
            self._counts[item] += 1
            if len(self._items) > self.n:
                old = self._items.popleft()
                self._counts[old] -= 1
                if self._counts[old] == 0:
                    del self._counts[old]
            self.t += 1

    def frequency(self, item: Hashable) -> int:
        return self._counts.get(item, 0)

    def heavy_hitters(self, phi: float) -> dict[Hashable, int]:
        """Items with window frequency >= φ·min(t, n)."""
        window_len = min(self.t, self.n)
        threshold = phi * window_len
        return {e: c for e, c in self._counts.items() if c >= threshold}

    def counts(self) -> Counter:
        return Counter(self._counts)


class ExactInfiniteFrequencies:
    """Exact per-item frequencies over the whole stream so far."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self.t = 0

    def extend(self, items: Iterable[Hashable] | np.ndarray) -> None:
        for item in items:
            item = item.item() if isinstance(item, np.generic) else item
            self._counts[item] += 1
            self.t += 1

    def frequency(self, item: Hashable) -> int:
        return self._counts.get(item, 0)

    def heavy_hitters(self, phi: float) -> dict[Hashable, int]:
        threshold = phi * self.t
        return {e: c for e, c in self._counts.items() if c >= threshold}

    def counts(self) -> Counter:
        return Counter(self._counts)
