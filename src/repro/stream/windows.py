"""Count-based sliding-window bookkeeping.

Positions follow the paper's convention: the stream is ``e_1 e_2 …``
(1-based) and the window of size ``n`` at time ``t`` is
``W_n(S_t) = e_{t−n+1}, …, e_t`` (clamped at the stream start).
"""

from __future__ import annotations

__all__ = ["window_bounds", "in_window", "block_of", "block_range"]


def window_bounds(t: int, n: int) -> tuple[int, int]:
    """Inclusive 1-based ``(start, end)`` of ``W_n(S_t)``.

    For ``t < n`` the window is the whole prefix.  An empty stream
    yields ``(1, 0)`` (an empty interval).
    """
    if t < 0 or n < 1:
        raise ValueError(f"need t >= 0 and n >= 1, got t={t}, n={n}")
    return max(1, t - n + 1), t


def in_window(pos: int, t: int, n: int) -> bool:
    """Is 1-based stream position ``pos`` inside ``W_n(S_t)``?"""
    start, end = window_bounds(t, n)
    return start <= pos <= end


def block_of(pos: int, gamma: int) -> int:
    """β(pos): the id of the γ-block containing 1-based position ``pos``.

    Block ``B_k`` covers positions ``(k−1)·γ + 1 … k·γ`` (Section 3.1).
    """
    if pos < 1 or gamma < 1:
        raise ValueError(f"need pos >= 1 and gamma >= 1, got {pos}, {gamma}")
    return (pos + gamma - 1) // gamma


def block_range(block_id: int, gamma: int) -> tuple[int, int]:
    """Inclusive 1-based position range covered by block ``block_id``."""
    if block_id < 1 or gamma < 1:
        raise ValueError("block_id and gamma must be >= 1")
    return (block_id - 1) * gamma + 1, block_id * gamma
