"""Watermark reordering: out-of-order arrivals for in-order operators.

The paper's model (like [DGIM02, LT06]) assumes elements arrive in
stream order; its cited related work [XTB08] studies *asynchronous*
streams where they do not.  Rather than redesign every synopsis, this
module applies the standard systems remedy (Flink/Beam-style
watermarks): buffer arrivals whose timestamps may still be preceded by
stragglers, and release — in timestamp order — exactly the prefix that
the *tardiness bound* L proves complete.

Guarantee: if every element arrives at most L positions after its
in-order position (bounded tardiness), downstream operators observe a
correctly ordered stream and all their window guarantees apply
verbatim, delayed by at most L elements.  Elements tardier than L are
counted and dropped (exposed via ``late_drops`` — the accuracy caveat
asynchronous settings cannot avoid without unbounded buffering).
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

__all__ = ["WatermarkReorderer"]


class WatermarkReorderer:
    """Reorder (timestamp, value) arrivals with tardiness bound ``L``.

    Parameters
    ----------
    tardiness:
        L — the maximum number of positions any element may arrive
        late.  The reorder buffer holds at most L+1 elements beyond the
        released prefix.

    Usage
    -----
    >>> reorderer = WatermarkReorderer(tardiness=2)
    >>> out = list(reorderer.push(np.array([2, 1, 3]), np.array([20, 10, 30])))
    >>> [(t, v) for t, v in out]
    [(1, 10), (2, 20)]
    >>> [(t, v) for t, v in reorderer.flush()]
    [(3, 30)]
    """

    def __init__(self, tardiness: int) -> None:
        if tardiness < 0:
            raise ValueError(f"tardiness must be >= 0, got {tardiness}")
        self.tardiness = int(tardiness)
        self._heap: list[tuple[int, int, int]] = []  # (ts, seq, value)
        self._seq = 0  # tie-break so equal timestamps keep arrival order
        self._max_ts_seen = -(1 << 62)
        self._released_ts = -(1 << 62)
        self.late_drops = 0
        self.released = 0

    def push(
        self, timestamps: np.ndarray, values: np.ndarray
    ) -> Iterator[tuple[int, int]]:
        """Feed a batch of (timestamp, value) pairs; yield every pair
        whose timestamp the watermark now proves complete, in order."""
        timestamps = np.asarray(timestamps, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if timestamps.shape != values.shape:
            raise ValueError("timestamps and values must align")
        for ts, value in zip(timestamps.tolist(), values.tolist()):
            if ts <= self._released_ts:
                self.late_drops += 1  # tardier than L: provably unmergeable
                continue
            heapq.heappush(self._heap, (ts, self._seq, value))
            self._seq += 1
            if ts > self._max_ts_seen:
                self._max_ts_seen = ts
        # Watermark: everything at or below (max seen − L) is complete.
        watermark = self._max_ts_seen - self.tardiness
        while self._heap and self._heap[0][0] <= watermark:
            ts, _seq, value = heapq.heappop(self._heap)
            self._released_ts = max(self._released_ts, ts)
            self.released += 1
            yield ts, value

    def flush(self) -> list[tuple[int, int]]:
        """End of stream: release everything still buffered, in order.

        Idempotent — the buffer drains exactly once, so a second call
        (e.g. a recovery path flushing "just in case") returns ``[]``
        instead of double-delivering elements downstream.
        """
        out: list[tuple[int, int]] = []
        while self._heap:
            ts, _seq, value = heapq.heappop(self._heap)
            self._released_ts = max(self._released_ts, ts)
            self.released += 1
            out.append((ts, value))
        return out

    @property
    def buffered(self) -> int:
        return len(self._heap)

    @property
    def pending(self) -> list[tuple[int, int]]:
        """The still-buffered (timestamp, value) pairs in release order,
        without draining them — inspection for checkpoints and audits."""
        return [(ts, value) for ts, _seq, value in sorted(self._heap)]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        from repro.resilience.state import header

        return {
            **header("watermark_reorderer"),
            "tardiness": self.tardiness,
            "heap": [list(entry) for entry in self._heap],
            "seq": self._seq,
            "max_ts_seen": self._max_ts_seen,
            "released_ts": self._released_ts,
            "late_drops": self.late_drops,
            "released": self.released,
        }

    def load_state(self, state: dict) -> None:
        from repro.resilience.state import expect

        expect(state, "watermark_reorderer")
        self.tardiness = int(state["tardiness"])
        heap = [tuple(int(x) for x in entry) for entry in state["heap"]]
        heapq.heapify(heap)
        self._heap = heap
        self._seq = int(state["seq"])
        self._max_ts_seen = int(state["max_ts_seen"])
        self._released_ts = int(state["released_ts"])
        self.late_drops = int(state["late_drops"])
        self.released = int(state["released"])

    def check_invariants(self) -> None:
        from repro.resilience.invariants import require

        name = "WatermarkReorderer"
        require(self.tardiness >= 0, name, "negative tardiness bound")
        require(
            all(ts > self._released_ts for ts, _seq, _value in self._heap),
            name,
            "buffered element at or below the released watermark",
        )
        require(self.late_drops >= 0 and self.released >= 0, name,
                "negative release/drop counters")
