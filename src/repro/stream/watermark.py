"""Watermark reordering: out-of-order arrivals for in-order operators.

The paper's model (like [DGIM02, LT06]) assumes elements arrive in
stream order; its cited related work [XTB08] studies *asynchronous*
streams where they do not.  Rather than redesign every synopsis, this
module applies the standard systems remedy (Flink/Beam-style
watermarks): buffer arrivals whose timestamps may still be preceded by
stragglers, and release — in timestamp order — exactly the prefix that
the *tardiness bound* L proves complete.

Guarantee: if every element arrives at most L positions after its
in-order position (bounded tardiness), downstream operators observe a
correctly ordered stream and all their window guarantees apply
verbatim, delayed by at most L elements.  Elements tardier than L are
counted and dropped (exposed via ``late_drops`` — the accuracy caveat
asynchronous settings cannot avoid without unbounded buffering).
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

__all__ = ["WatermarkReorderer"]


class WatermarkReorderer:
    """Reorder (timestamp, value) arrivals with tardiness bound ``L``.

    Parameters
    ----------
    tardiness:
        L — the maximum number of positions any element may arrive
        late.  The reorder buffer holds at most L+1 elements beyond the
        released prefix.

    Usage
    -----
    >>> reorderer = WatermarkReorderer(tardiness=2)
    >>> out = list(reorderer.push(np.array([2, 1, 3]), np.array([20, 10, 30])))
    >>> [(t, v) for t, v in out]
    [(1, 10), (2, 20)]
    >>> [(t, v) for t, v in reorderer.flush()]
    [(3, 30)]
    """

    def __init__(self, tardiness: int) -> None:
        if tardiness < 0:
            raise ValueError(f"tardiness must be >= 0, got {tardiness}")
        self.tardiness = int(tardiness)
        self._heap: list[tuple[int, int, int]] = []  # (ts, seq, value)
        self._seq = 0  # tie-break so equal timestamps keep arrival order
        self._max_ts_seen = -(1 << 62)
        self._released_ts = -(1 << 62)
        self.late_drops = 0
        self.released = 0

    def push(
        self, timestamps: np.ndarray, values: np.ndarray
    ) -> Iterator[tuple[int, int]]:
        """Feed a batch of (timestamp, value) pairs; yield every pair
        whose timestamp the watermark now proves complete, in order."""
        timestamps = np.asarray(timestamps, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if timestamps.shape != values.shape:
            raise ValueError("timestamps and values must align")
        for ts, value in zip(timestamps.tolist(), values.tolist()):
            if ts <= self._released_ts:
                self.late_drops += 1  # tardier than L: provably unmergeable
                continue
            heapq.heappush(self._heap, (ts, self._seq, value))
            self._seq += 1
            if ts > self._max_ts_seen:
                self._max_ts_seen = ts
        # Watermark: everything at or below (max seen − L) is complete.
        watermark = self._max_ts_seen - self.tardiness
        while self._heap and self._heap[0][0] <= watermark:
            ts, _seq, value = heapq.heappop(self._heap)
            self._released_ts = max(self._released_ts, ts)
            self.released += 1
            yield ts, value

    def flush(self) -> Iterator[tuple[int, int]]:
        """End of stream: release everything still buffered, in order."""
        while self._heap:
            ts, _seq, value = heapq.heappop(self._heap)
            self._released_ts = max(self._released_ts, ts)
            self.released += 1
            yield ts, value

    @property
    def buffered(self) -> int:
        return len(self._heap)
