"""Discretized-stream machinery: workload generators, exact oracles,
window bookkeeping, and the minibatch pipeline driver (Section 1's
Spark-Streaming-style processing model).

A stream arrives as *minibatches* — NumPy arrays of µ items — and the
:class:`~repro.stream.minibatch.MinibatchDriver` feeds each batch to a
set of synopsis operators, charging the work-depth ledger per batch
(the paper's per-batch work/depth bounds are stated in exactly this
model).  Generators cover the evaluation workloads (Zipf, uniform,
bursty, flash-crowd, adversarial heavy-hitter, bit and packet traces);
oracles provide the exact answers the accuracy audits compare against.

Each processed batch is traced as a ``driver.batch`` span and counted
in the process metrics registry (``repro_batches_processed_total``,
``repro_items_ingested_total``, ``repro_work_charged_total``,
``repro_batch_seconds``, retry/duplicate/quarantine/recovery counters
— catalog in docs/observability.md)."""

from repro.stream.generators import (
    adversarial_hh_stream,
    bit_stream,
    bursty_bit_stream,
    bursty_stream,
    flash_crowd_stream,
    minibatches,
    packet_trace,
    uniform_stream,
    zipf_stream,
)
from repro.stream.minibatch import BatchReport, MinibatchDriver, StreamOperator
from repro.stream.monitor import HeavyHitterEvent, HeavyHitterMonitor
from repro.stream.watermark import WatermarkReorderer
from repro.stream.oracle import (
    ExactInfiniteFrequencies,
    ExactWindowCounter,
    ExactWindowFrequencies,
    ExactWindowSum,
)
from repro.stream.windows import window_bounds, in_window

__all__ = [
    "adversarial_hh_stream",
    "bit_stream",
    "bursty_bit_stream",
    "bursty_stream",
    "flash_crowd_stream",
    "minibatches",
    "packet_trace",
    "uniform_stream",
    "zipf_stream",
    "BatchReport",
    "MinibatchDriver",
    "StreamOperator",
    "HeavyHitterEvent",
    "HeavyHitterMonitor",
    "WatermarkReorderer",
    "ExactInfiniteFrequencies",
    "ExactWindowCounter",
    "ExactWindowFrequencies",
    "ExactWindowSum",
    "window_bounds",
    "in_window",
]
