"""Discretized-stream machinery: workload generators, exact oracles,
window bookkeeping, and the minibatch pipeline driver (Section 1's
Spark-Streaming-style processing model)."""

from repro.stream.generators import (
    adversarial_hh_stream,
    bit_stream,
    bursty_bit_stream,
    bursty_stream,
    flash_crowd_stream,
    minibatches,
    packet_trace,
    uniform_stream,
    zipf_stream,
)
from repro.stream.minibatch import BatchReport, MinibatchDriver, StreamOperator
from repro.stream.monitor import HeavyHitterEvent, HeavyHitterMonitor
from repro.stream.watermark import WatermarkReorderer
from repro.stream.oracle import (
    ExactInfiniteFrequencies,
    ExactWindowCounter,
    ExactWindowFrequencies,
    ExactWindowSum,
)
from repro.stream.windows import window_bounds, in_window

__all__ = [
    "adversarial_hh_stream",
    "bit_stream",
    "bursty_bit_stream",
    "bursty_stream",
    "flash_crowd_stream",
    "minibatches",
    "packet_trace",
    "uniform_stream",
    "zipf_stream",
    "BatchReport",
    "MinibatchDriver",
    "StreamOperator",
    "HeavyHitterEvent",
    "HeavyHitterMonitor",
    "WatermarkReorderer",
    "ExactInfiniteFrequencies",
    "ExactWindowCounter",
    "ExactWindowFrequencies",
    "ExactWindowSum",
    "window_bounds",
    "in_window",
]
