"""Continuous-monitoring change events over heavy-hitter trackers.

The paper's motivation is continuous monitoring — an operator cares
about the *moment* an item becomes (or stops being) heavy, not about
re-reading the full report every batch.  :class:`HeavyHitterMonitor`
wraps any tracker exposing ``ingest``/``query`` and emits
enter/exit events by diffing consecutive reports, with optional
hysteresis to suppress flapping at the φ boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Protocol, Sequence

import numpy as np

__all__ = ["HeavyHitterEvent", "HeavyHitterMonitor"]


class _Tracker(Protocol):
    def ingest(self, batch) -> None: ...

    def query(self) -> dict: ...


@dataclass(frozen=True)
class HeavyHitterEvent:
    """One membership change in the heavy-hitter set."""

    batch_index: int
    item: Hashable
    kind: str  # "enter" | "exit"
    estimate: float


class HeavyHitterMonitor:
    """Diff a tracker's reports across batches into enter/exit events.

    Parameters
    ----------
    tracker:
        Any heavy-hitter tracker (``InfiniteHeavyHitters``,
        ``SlidingHeavyHitters``, or compatible).
    hysteresis:
        An item must stay absent for this many consecutive reports
        before an "exit" fires (0 = immediate).  Suppresses flapping
        for items oscillating around the φ threshold.

    Degraded mode
    -------------
    A tracker whose ``query()`` raises mid-stream (a corrupted synopsis,
    a recovery in progress) no longer takes the monitor down: the batch
    is ingested, ``degraded`` flips to ``True``, the batch index is
    recorded in ``degraded_batches``, and the last good report stands in
    — so no spurious exit events fire from a transient failure.  The
    flag clears on the next successful report.
    """

    def __init__(self, tracker: _Tracker, *, hysteresis: int = 0) -> None:
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        self.tracker = tracker
        self.hysteresis = int(hysteresis)
        self.events: list[HeavyHitterEvent] = []
        self._active: dict[Hashable, float] = {}
        self._missing_streak: dict[Hashable, int] = {}
        self._batch_index = 0
        #: True while the tracker's last ``query()`` raised.
        self.degraded = False
        #: Batch indices whose report had to be substituted.
        self.degraded_batches: list[int] = []

    def ingest(self, batch: Sequence[Hashable] | np.ndarray) -> list[HeavyHitterEvent]:
        """Feed one minibatch; return the events it triggered."""
        self.tracker.ingest(batch)
        try:
            report = self.tracker.query()
            self.degraded = False
        except Exception:  # noqa: BLE001 - degrade, don't crash the stream
            self.degraded = True
            self.degraded_batches.append(self._batch_index)
            # Stand in the last good report: membership is unchanged, so
            # no enter/exit events can fire from a failed query.
            report = dict(self._active)
        new_events: list[HeavyHitterEvent] = []

        for item, estimate in report.items():
            self._missing_streak.pop(item, None)
            if item not in self._active:
                new_events.append(
                    HeavyHitterEvent(self._batch_index, item, "enter", estimate)
                )
            self._active[item] = estimate

        for item in list(self._active):
            if item in report:
                continue
            streak = self._missing_streak.get(item, 0) + 1
            if streak > self.hysteresis:
                new_events.append(
                    HeavyHitterEvent(
                        self._batch_index, item, "exit", self._active[item]
                    )
                )
                del self._active[item]
                self._missing_streak.pop(item, None)
            else:
                self._missing_streak[item] = streak

        self.events.extend(new_events)
        self._batch_index += 1
        return new_events

    extend = ingest

    def active(self) -> dict[Hashable, float]:
        """The currently-heavy set as the monitor sees it."""
        return dict(self._active)

    def history(self, item: Hashable) -> list[HeavyHitterEvent]:
        """All events for one item, in order."""
        return [e for e in self.events if e.item == item]
