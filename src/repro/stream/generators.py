"""Synthetic workload generators.

The paper's motivating workloads — network monitoring [EV03, CH10] and
social-media monitoring (the DARPA SMISC acknowledgment) — are
proprietary traces we do not have.  Per the substitution rule, these
generators produce the closest synthetic equivalents: heavy-tailed
(Zipf) item streams, flash-crowd bursts, adversarial heavy-hitter-hiding
patterns, and packet-trace-like flow records.  All aggregate guarantees
in the paper are distribution-free, so any generator exercises the same
code paths; the skewed ones make heavy hitters and frequency estimates
*interesting*.

All generators take an explicit ``rng`` (or ``seed``) and return NumPy
arrays; item universes are dense nonnegative integers so the vectorized
fast paths engage.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "zipf_stream",
    "uniform_stream",
    "bursty_stream",
    "flash_crowd_stream",
    "adversarial_hh_stream",
    "bit_stream",
    "bursty_bit_stream",
    "packet_trace",
    "minibatches",
]


def _rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def zipf_probabilities(universe: int, alpha: float) -> np.ndarray:
    """Normalized Zipf(alpha) pmf over items ``0..universe-1``."""
    if universe < 1:
        raise ValueError("universe must be >= 1")
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks ** (-float(alpha))
    return weights / weights.sum()


def zipf_stream(
    n: int,
    universe: int = 10_000,
    alpha: float = 1.1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A bounded-universe Zipf(alpha) item stream.

    Item ``i`` has probability ∝ (i+1)^(−alpha): item 0 is the hottest.
    alpha ≈ 1.0–1.3 matches the skew of the packet and word-frequency
    streams the heavy-hitter literature cites.
    """
    gen = _rng(rng)
    probs = zipf_probabilities(universe, alpha)
    return gen.choice(universe, size=n, p=probs).astype(np.int64)


def uniform_stream(
    n: int,
    universe: int = 10_000,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A uniform item stream — the no-heavy-hitter stress case."""
    gen = _rng(rng)
    return gen.integers(0, universe, size=n, dtype=np.int64)


def bursty_stream(
    n: int,
    universe: int = 10_000,
    burst_item: int = 0,
    burst_len: int = 200,
    period: int = 2_000,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Uniform background with periodic solid bursts of one hot item.

    Every ``period`` positions, ``burst_len`` consecutive arrivals are
    all ``burst_item`` — the pattern that stresses *sliding-window*
    trackers, because the hot item's window frequency swings sharply as
    bursts enter and leave the window.
    """
    if not 0 < burst_len <= period:
        raise ValueError("need 0 < burst_len <= period")
    gen = _rng(rng)
    out = gen.integers(0, universe, size=n, dtype=np.int64)
    positions = np.arange(n)
    out[(positions % period) < burst_len] = burst_item
    return out


def flash_crowd_stream(
    n: int,
    universe: int = 10_000,
    crowd_item: int = 1,
    onset: float = 0.5,
    crowd_share: float = 0.4,
    alpha: float = 1.1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Zipf background; after ``onset``·n arrivals, ``crowd_item``
    suddenly takes a ``crowd_share`` fraction of all arrivals.

    Models the flash-crowd / trending-topic events the paper's
    monitoring motivation describes: an item that was cold becomes a
    heavy hitter mid-stream, so infinite-window and sliding-window
    trackers must disagree for a while.
    """
    if not 0 <= onset <= 1 or not 0 <= crowd_share < 1:
        raise ValueError("onset in [0,1], crowd_share in [0,1) required")
    gen = _rng(rng)
    out = zipf_stream(n, universe, alpha, gen)
    start = int(onset * n)
    hot = gen.random(n - start) < crowd_share
    out[start:][hot] = crowd_item
    return out


def adversarial_hh_stream(
    n: int,
    phi: float = 0.05,
    universe: int = 10_000,
    hidden_item: int = 7,
    margin: float = 1.2,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A stream where the only heavy hitter is maximally spread out.

    ``hidden_item`` occurs exactly ``ceil(margin·φ·n)`` times at evenly
    spaced positions; everything else is a fresh (near-unique) filler.
    This is the pattern behind the Lemma 5.10 lower bound: an algorithm
    that skips a constant fraction of positions risks missing the
    spread-out heavy hitter entirely.
    """
    if not 0 < phi < 1:
        raise ValueError("phi in (0,1) required")
    gen = _rng(rng)
    occurrences = min(n, int(np.ceil(margin * phi * n)))
    # Distinct filler ids (shuffled) so no filler item is ever frequent.
    filler = universe + gen.permutation(n).astype(np.int64)
    positions = np.linspace(0, n - 1, occurrences).astype(np.int64)
    filler[positions] = hidden_item
    return filler


def bit_stream(
    n: int,
    density: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """An i.i.d. Bernoulli(density) {0,1}-stream for basic counting."""
    if not 0 <= density <= 1:
        raise ValueError("density in [0,1] required")
    gen = _rng(rng)
    return (gen.random(n) < density).astype(np.int64)


def bursty_bit_stream(
    n: int,
    low: float = 0.02,
    high: float = 0.9,
    period: int = 5_000,
    duty: float = 0.2,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A {0,1}-stream alternating sparse and dense phases.

    Exercises the whole geometric ladder of Theorem 4.1's basic counter:
    sparse phases are answered by fine (small-λ) SBBCs, dense phases by
    coarse ones, and the OVERFLOWED hand-over happens at every phase
    transition.
    """
    gen = _rng(rng)
    positions = np.arange(n)
    in_burst = (positions % period) < int(duty * period)
    p = np.where(in_burst, high, low)
    return (gen.random(n) < p).astype(np.int64)


def packet_trace(
    n: int,
    flows: int = 2_000,
    alpha: float = 1.2,
    max_packet: int = 1_500,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """A synthetic packet trace: (flow_id, packet_bytes) per arrival.

    Flow popularity is Zipf (elephants and mice, per [EV03]); packet
    sizes are bimodal (ACK-sized vs MTU-sized) like real traces.  Used
    by the network-monitoring example and the Sum benchmarks.
    """
    gen = _rng(rng)
    flow_ids = zipf_stream(n, flows, alpha, gen)
    small = gen.integers(40, 100, size=n)
    large = gen.integers(1_000, max_packet + 1, size=n)
    sizes = np.where(gen.random(n) < 0.4, small, large).astype(np.int64)
    return flow_ids, sizes


def minibatches(stream: np.ndarray, batch_size: int) -> Iterator[np.ndarray]:
    """Chop a stream into consecutive minibatches (last may be short)."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    for start in range(0, len(stream), batch_size):
        yield stream[start : start + batch_size]
