"""A small dataflow DAG over minibatches.

``MinibatchDriver`` used to hard-code its per-batch recipe as a linear
loop: build one :class:`~repro.pram.plan.PreparedBatch`, then feed each
operator in turn.  That recipe is really a four-stage dataflow graph —

    source ──► prepare ──► op:a ─┐
                    │            ├──► fold
                    └─────► op:b ┘

— and making the graph explicit buys two things.  First, the shared
prework becomes a first-class node instead of driver-internal plumbing.
Second, the operator fan-out becomes *schedulable*: handed a
:class:`~repro.pram.backend.Backend`, independent nodes in a level run
as fork-join strands, charged sum-work / max-depth like every other
parallel region in the repo.

Executed without a backend, the graph replays the exact call sequence
of the old loop — same calls, same order, same charges — which is what
lets the :class:`~repro.stream.minibatch.MinibatchDriver` shim prove
bit-identical reports, ledgers, and checkpoint states (tested in
``tests/test_engine_graph.py``).

Node ``run`` callables are built as :func:`functools.partial` over
module-level functions so a scheduled graph pickles into
:class:`~repro.pram.backend.ProcessPoolBackend` workers; process
workers return the mutated operator, and the caller adopts it via the
``fold`` node's name → operator mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable, Mapping

from repro.pram.backend import Backend, fork_join
from repro.pram.plan import PreparedBatch

__all__ = ["Node", "DataflowGraph", "operator_graph"]


@dataclass(frozen=True)
class Node:
    """One vertex: a named computation over its dependencies' outputs.

    ``run`` receives a mapping of dependency name → output and returns
    this node's output.  ``run=None`` marks a placeholder whose output
    must be seeded into :meth:`DataflowGraph.execute` (the batch
    source).  ``kind`` is a display/grouping tag, not semantics.
    """

    name: str
    run: Callable[[Mapping[str, Any]], Any] | None
    deps: tuple[str, ...] = ()
    kind: str = "task"


class DataflowGraph:
    """A DAG of :class:`Node`\\ s executable serially or over a backend."""

    def __init__(self) -> None:
        self._nodes: dict[str, Node] = {}

    def add(
        self,
        name: str,
        run: Callable[[Mapping[str, Any]], Any] | None,
        *,
        deps: Iterable[str] = (),
        kind: str = "task",
    ) -> Node:
        if name in self._nodes:
            raise ValueError(f"duplicate node {name!r}")
        node = Node(name=name, run=run, deps=tuple(deps), kind=kind)
        for dep in node.deps:
            if dep not in self._nodes:
                raise ValueError(f"node {name!r} depends on unknown {dep!r}")
        self._nodes[name] = node
        return node

    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes.values())

    def topo_order(self) -> list[Node]:
        """Kahn's algorithm, stable in insertion order.

        Because :meth:`add` refuses forward references, insertion order
        *is* a topological order; this recomputes it defensively so
        subclasses or future mutation paths cannot silently break the
        invariant."""
        indegree = {name: len(node.deps) for name, node in self._nodes.items()}
        dependents: dict[str, list[str]] = {name: [] for name in self._nodes}
        for node in self._nodes.values():
            for dep in node.deps:
                dependents[dep].append(node.name)
        ready = [name for name in self._nodes if indegree[name] == 0]
        order: list[Node] = []
        while ready:
            name = ready.pop(0)
            order.append(self._nodes[name])
            for succ in dependents[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._nodes):
            stuck = sorted(set(self._nodes) - {n.name for n in order})
            raise ValueError(f"dependency cycle among {stuck}")
        return order

    def levels(self) -> list[list[Node]]:
        """Longest-path layering: level(n) = 1 + max level of its deps.

        Nodes within a level are mutually independent, so a level is a
        valid fork-join region; the number of levels is the graph's
        critical-path length in stages."""
        depth: dict[str, int] = {}
        layers: list[list[Node]] = []
        for node in self.topo_order():
            d = 1 + max((depth[dep] for dep in node.deps), default=-1)
            depth[node.name] = d
            while len(layers) <= d:
                layers.append([])
            layers[d].append(node)
        return layers

    def execute(
        self,
        inputs: Mapping[str, Any] | None = None,
        *,
        backend: Backend | None = None,
    ) -> dict[str, Any]:
        """Run every node; return the full name → output context.

        Without a backend, nodes run one after another in topological
        (= program) order — byte-for-byte the legacy driver loop.  With
        a backend, each level's unseeded nodes run as one fork-join
        region; a single-node level runs inline, since a one-strand
        "region" is sequential composition and must charge as such.
        """
        ctx: dict[str, Any] = dict(inputs or {})
        if backend is None:
            for node in self.topo_order():
                if node.name in ctx:
                    continue
                if node.run is None:
                    raise ValueError(f"node {node.name!r} needs a seeded input")
                ctx[node.name] = node.run(ctx)
            return ctx

        for layer in self.levels():
            pending = [node for node in layer if node.name not in ctx]
            for node in pending:
                if node.run is None:
                    raise ValueError(f"node {node.name!r} needs a seeded input")
            if len(pending) == 1:
                node = pending[0]
                ctx[node.name] = node.run(ctx)
            elif pending:
                # Each strand sees only its declared dependencies — a
                # picklable slice, so process workers can run it too.
                tasks = [
                    partial(node.run, {dep: ctx[dep] for dep in node.deps})
                    for node in pending
                ]
                for node, out in zip(pending, fork_join(tasks, backend)):
                    ctx[node.name] = out
        return ctx


# ----------------------------------------------------------------------
# The driver's per-batch pipeline as a graph.  Module-level node bodies
# (partial-applied) keep every node picklable for process scheduling.
# ----------------------------------------------------------------------


def _prepare_node(share_prework: bool, ctx: Mapping[str, Any]) -> Any:
    return PreparedBatch(ctx["source"]) if share_prework else None


def _op_node(op: Any, ctx: Mapping[str, Any]) -> Any:
    plan = ctx.get("prepare")
    if plan is not None and hasattr(op, "ingest_prepared"):
        op.ingest_prepared(plan)
    else:
        op.ingest(ctx["source"])
    return op


def _fold_node(op_names: tuple[str, ...], ctx: Mapping[str, Any]) -> dict[str, Any]:
    return {name: ctx[f"op:{name}"] for name in op_names}


def _fuse_node(fusion: Any, ctx: Mapping[str, Any]) -> Any:
    fusion.execute(ctx["prepare"])
    return fusion


def _fused_op_node(op: Any, ctx: Mapping[str, Any]) -> Any:
    # The fuse node already ingested the batch into every operator;
    # this node only republishes the operator for the fold.
    return op


def operator_graph(
    operators: Mapping[str, Any],
    *,
    share_prework: bool = True,
    fusion: Any | None = None,
) -> DataflowGraph:
    """source → prepare → one node per operator → fold.

    The serial execution order over this graph is exactly the legacy
    ``MinibatchDriver`` loop: build the plan (or skip it), then visit
    operators in mapping order, preferring ``ingest_prepared`` when a
    plan exists.  The ``fold`` output maps operator name → the operator
    that absorbed the batch (the same object in-process; the worker's
    mutated copy under a process backend — callers re-adopt its state).

    With a ``fusion`` (:class:`repro.engine.fusion.FusedIngestPlan`) a
    ``fuse`` node between prepare and the operator fan-in runs the
    stacked multi-operator kernel over the plan — serial-exact in
    states and charges — and the per-operator nodes become pass-through
    republishers.  Requires ``share_prework`` (the fused kernel
    consumes the plan) and an in-process serial execution.
    """
    graph = DataflowGraph()
    graph.add("source", None, kind="source")
    graph.add(
        "prepare", partial(_prepare_node, share_prework),
        deps=("source",), kind="prepare",
    )
    op_names = tuple(operators)
    if fusion is not None:
        if not share_prework:
            raise ValueError("a fused graph requires share_prework=True")
        graph.add(
            "fuse", partial(_fuse_node, fusion),
            deps=("source", "prepare"), kind="fuse",
        )
        for name in op_names:
            graph.add(
                f"op:{name}", partial(_fused_op_node, operators[name]),
                deps=("fuse",), kind="operator",
            )
    else:
        for name in op_names:
            graph.add(
                f"op:{name}", partial(_op_node, operators[name]),
                deps=("source", "prepare"), kind="operator",
            )
    graph.add(
        "fold", partial(_fold_node, op_names),
        deps=tuple(f"op:{name}" for name in op_names), kind="fold",
    )
    return graph
