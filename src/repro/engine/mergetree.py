"""k-ary merge trees over mergeable summaries.

``shard_ingest`` (PR3) folds S partial synopses back into the parent
with a flat left fold: S sequential ``merge`` calls, hence charged
depth Θ(S) for the fold phase even though every ``merge`` is itself a
shallow parallel region.  The mergeable-summaries property ([ACH+13],
and the QPOPSS / Cafaro et al. parallel Space-Saving architecture in
PAPERS.md) licenses *any* merge order — so fold the partials through a
k-ary tree instead: each round groups k partials and merges each group
as one fork-join strand, shrinking S partials to ⌈S/k⌉ per round.

With per-merge depth d, the fold phase charges

    flat fold:   depth ≈ S · d
    k-ary tree:  depth ≈ ⌈log_k S⌉ · (k−1) · d  + d (final adoption)

— logarithmic in S for fixed arity, verified against the measured
ledger by ``benchmarks/bench_e17_mergetree.py``.  The *states* are
identical either way (merge order freedom), which the benchmark also
asserts cell-for-cell against single-pass serial ingest.

Unlike ``shard_ingest``, partials travel as pickled operators rather
than ``state_dict`` blobs, so any synopsis with ``fresh_clone`` +
``merge`` qualifies — including baselines without the resilience
codec (ExactCounters, SpaceSaving, SequentialCountMin).
"""

from __future__ import annotations

import pickle
from functools import partial
from typing import Any, Sequence

import numpy as np

from repro.pram.backend import Backend, fork_join

__all__ = [
    "shard_partials",
    "refold_partials",
    "merge_partials",
    "merge_tree_ingest",
]


def _leaf_task(clone_blob: bytes, shard: np.ndarray) -> Any:
    """Leaf strand: ingest one shard into a fresh clone and return the
    partial synopsis itself (module-level so it pickles into a
    :class:`~repro.pram.backend.ProcessPoolBackend` worker)."""
    op = pickle.loads(clone_blob)
    op.ingest(shard)
    return op


def _merge_group(group: Sequence[Any]) -> Any:
    """Merge strand: fold one group of partials into its head.

    The k−1 merges run sequentially *within* the strand — that is the
    (k−1)·d per-round depth in the tree bound — while groups of the
    same round run as parallel strands."""
    head = group[0]
    for other in group[1:]:
        head.merge(other)
    return head


def _require_mergeable(op: Any, caller: str) -> None:
    for required in ("fresh_clone", "merge"):
        if not hasattr(op, required):
            raise TypeError(
                f"{type(op).__name__} has no {required}(); {caller} needs "
                "a mergeable synopsis (fresh_clone + merge)"
            )


def shard_partials(
    op: Any,
    batch: np.ndarray,
    *,
    shards: int,
    backend: Backend | None = None,
) -> list[Any]:
    """Split ``batch`` into ``shards`` contiguous chunks and ingest each
    into an empty ``op.fresh_clone()`` — one fork-join region, one
    strand per shard.  Returns the partial synopses, unmerged."""
    _require_mergeable(op, "shard_partials")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    batch = np.asarray(batch)
    clone_blob = pickle.dumps(op.fresh_clone())
    parts = [part for part in np.array_split(batch, shards) if part.size]
    tasks = [partial(_leaf_task, clone_blob, part) for part in parts]
    return fork_join(tasks, backend)


def refold_partials(
    partials: Sequence[Any],
    *,
    arity: int = 2,
    backend: Backend | None = None,
) -> Any:
    """Fold ``partials`` into one synopsis through k-ary tree rounds and
    return the folded head (``None`` for an empty list).

    The partials may be *heterogeneous in history* — fresh leaves from
    one minibatch, or long-lived per-shard accumulators holding many
    batches of state, or a mix: merge-order freedom makes the fold valid
    regardless.  Unlike :func:`merge_partials` there is no adopting
    ``op`` — the caller owns the result.  This is the re-fold step of
    the elastic reshard protocol
    (:class:`repro.resilience.reshard.ElasticShardedIngestor`), which
    collapses the old shard set's partials before repartitioning to the
    new shard count."""
    if arity < 2:
        raise ValueError(f"arity must be >= 2, got {arity}")
    parts = list(partials)
    # Degenerate folds, spelled out so the charged depth is obvious:
    # S=0 (an empty batch sharded to nothing) folds nothing; S=1 needs
    # no tree rounds at all.  Both paths charge exactly what the general
    # loop would — they exist for clarity and as anchors for the
    # regression tests in tests/test_mergetree.py.
    if not parts:
        return None
    # arity >= S collapses the tree to a single round: one group, one
    # strand, arity no longer matters beyond that round.
    while len(parts) > 1:
        groups = [parts[i : i + arity] for i in range(0, len(parts), arity)]
        tasks = [partial(_merge_group, group) for group in groups]
        parts = fork_join(tasks, backend)
    return parts[0]


def merge_partials(
    op: Any,
    partials: Sequence[Any],
    *,
    arity: int = 2,
    backend: Backend | None = None,
) -> Any:
    """Fold ``partials`` into ``op`` through a k-ary merge tree.

    Each round partitions the surviving partials into groups of
    ``arity`` and merges every group as one strand of a fork-join
    region; rounds repeat until one partial remains, which ``op``
    adopts with a final ``merge``.  Charged fold depth is
    O(log_arity S) rounds × (arity−1) merges, vs Θ(S) for the flat
    fold.  Returns ``op``."""
    _require_mergeable(op, "merge_partials")
    head = refold_partials(partials, arity=arity, backend=backend)
    if head is not None:
        op.merge(head)
    return op


def merge_tree_ingest(
    op: Any,
    batch: np.ndarray,
    *,
    shards: int,
    arity: int = 2,
    backend: Backend | None = None,
) -> Any:
    """Sharded ingest with a k-ary merge-tree fold.

    The tree-fold counterpart of
    :func:`repro.pram.backend.shard_ingest` (also reachable there via
    its ``arity=`` parameter): same leaf phase, same final state — the
    merge order is free for mergeable summaries — but the fold phase
    charges O(log_arity ``shards``) depth instead of Θ(``shards``).
    Returns ``op``."""
    parts = shard_partials(op, batch, shards=shards, backend=backend)
    return merge_partials(op, parts, arity=arity, backend=backend)
