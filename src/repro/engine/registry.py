"""Declarative registry of every synopsis the repo exports.

The paper's operators share one duck-typed contract — ``ingest`` /
``extend``, optionally ``ingest_prepared`` (PR3), ``merge`` +
``fresh_clone`` (mergeable summaries, [ACH+13]), ``state_dict`` /
``load_state`` / ``check_invariants`` (PR1) — but until this module the
contract was re-discovered by hand everywhere it mattered: the CLI's
constructor chain, the protocol-conformance sweep, the checkpoint
audit, the span catalog, the profiler's experiment table.  Each
operator module now *declares* itself once, at import time:

>>> from repro.engine import registry
>>> registry.load_all()                      # doctest: +ELLIPSIS
[...]
>>> registry.get("ParallelCountMin").caps.flags()
'MPIF'

and every subsystem iterates :func:`specs` instead of hard-coding the
operator list.  A spec carries the class, a one-line summary, the feed
kind its conformance tests need (``items`` vs ``bits``), declared
:class:`Capabilities` (tested against the class surface — a stale
declaration fails the conformance sweep), a deterministic ``build``
factory, and a canonical ``probe`` query used by round-trip and
merge-algebra tests.
"""

from __future__ import annotations

import inspect
import re
import textwrap
from dataclasses import dataclass, replace
from typing import Any, Callable, Protocol, runtime_checkable

__all__ = [
    "Synopsis",
    "Capabilities",
    "SynopsisSpec",
    "register",
    "get",
    "names",
    "specs",
    "registered",
    "servable",
    "create",
    "load_all",
    "sample_feed",
]

#: Feed kinds a spec can declare for its conformance streams.
ITEMS = "items"
BITS = "bits"


@runtime_checkable
class Synopsis(Protocol):
    """The minimal stream-operator contract: both pipeline verbs.

    Everything else — preparation, mergeability, windowing, invariant
    audits — is a *capability*, declared per-operator in its
    :class:`SynopsisSpec` and discoverable via ``spec.caps``.
    """

    def ingest(self, batch: Any) -> None:
        """Fold one minibatch into the synopsis."""
        ...

    def extend(self, items: Any) -> None:
        """Fold a sequence of single arrivals into the synopsis."""
        ...


@dataclass(frozen=True)
class Capabilities:
    """Optional facets of the synopsis contract, as declared flags.

    ``mergeable``
        ``merge(other)`` + ``fresh_clone()`` — the mergeable-summaries
        property that makes :func:`repro.engine.mergetree.merge_partials`,
        ``shard_ingest``, and elastic resharding
        (:class:`repro.resilience.ElasticShardedIngestor`) valid; it also
        selects the fuzzer's ``mergetree`` *and* ``reshard`` differential
        relations for the operator.
    ``preparable``
        ``ingest_prepared(plan)`` — consumes a shared
        :class:`~repro.pram.plan.PreparedBatch` instead of re-encoding.
    ``windowed``
        queries describe the last W arrivals, not the whole stream.
        :meth:`observe` infers this from a ``window`` constructor
        parameter; a class whose ``window`` argument does *not* make
        its answers windowed (the drift detectors size their inner
        estimator with it but answer whole-stream drift queries)
        corrects the inference with a class-level
        ``CAPABILITY_OVERRIDES`` dict, e.g.
        ``CAPABILITY_OVERRIDES = {"windowed": False}``.
    ``invariant_checked``
        ``check_invariants()`` — structural self-audit used by the
        resilience layer's checkpoint quarantine.
    ``fused``
        ``fused_gathers()`` + ``ingest_fused(plan, rows)`` — the
        operator's per-row gathers can be folded into the
        multi-operator fused ingest kernel
        (:class:`repro.engine.fusion.FusedIngestPlan`); it also selects
        the fuzzer's ``fused`` differential relation.
    ``concurrent``
        the mergeable surface *plus* the ``state_dict``/``load_state``
        codec — everything the thread-local buffered ingest path
        (:class:`repro.concurrent.ConcurrentIngestor`) needs: buffer
        sketches are ``fresh_clone()``\\ s flushed via ``merge``, and
        snapshot publication reuses buffer clones through the codec.
        Selects the fuzzer's ``staleness`` differential relation.
    """

    mergeable: bool = False
    preparable: bool = False
    windowed: bool = False
    invariant_checked: bool = False
    fused: bool = False
    concurrent: bool = False

    def flags(self) -> str:
        """Compact ``MPWIFC`` capability string (``-`` padding omitted)."""
        pairs = (
            ("M", self.mergeable),
            ("P", self.preparable),
            ("W", self.windowed),
            ("I", self.invariant_checked),
            ("F", self.fused),
            ("C", self.concurrent),
        )
        return "".join(letter for letter, on in pairs if on) or "-"

    @classmethod
    def observe(cls, target: type) -> "Capabilities":
        """Capabilities as actually present on the class surface — the
        ground truth that declared flags are tested against.

        Inference is structural (method presence, constructor
        signature); when structure misleads — a ``window`` parameter on
        an operator whose answers are not last-W queries — the class
        states the truth explicitly in a ``CAPABILITY_OVERRIDES`` dict
        of flag-name → bool, which is applied after inference.  Unknown
        flag names in the override are an error, so a typo fails the
        conformance sweep instead of silently changing nothing.
        """
        mergeable = callable(getattr(target, "merge", None)) and callable(
            getattr(target, "fresh_clone", None)
        )
        observed = cls(
            mergeable=mergeable,
            preparable=callable(getattr(target, "ingest_prepared", None)),
            windowed="window" in inspect.signature(target.__init__).parameters,
            invariant_checked=callable(getattr(target, "check_invariants", None)),
            fused=callable(getattr(target, "fused_gathers", None))
            and callable(getattr(target, "ingest_fused", None)),
            concurrent=mergeable
            and callable(getattr(target, "state_dict", None))
            and callable(getattr(target, "load_state", None)),
        )
        overrides = getattr(target, "CAPABILITY_OVERRIDES", None)
        if overrides:
            unknown = set(overrides) - set(cls.__dataclass_fields__)
            if unknown:
                raise ValueError(
                    f"{target.__name__}.CAPABILITY_OVERRIDES names unknown "
                    f"capabilities: {sorted(unknown)}"
                )
            observed = replace(
                observed, **{flag: bool(on) for flag, on in overrides.items()}
            )
        return observed


@dataclass(frozen=True)
class SynopsisSpec:
    """One registry entry: a synopsis class plus how to exercise it."""

    name: str
    cls: type
    summary: str
    input: str  # ITEMS | BITS
    caps: Capabilities
    build: Callable[[], Any]
    probe: Callable[[Any], Any] | None = None

    @property
    def kind(self) -> str:
        """``core`` for the paper's algorithms, ``baseline`` otherwise."""
        return "core" if self.cls.__module__.startswith("repro.core") else "baseline"

    @property
    def servable(self) -> bool:
        """Whether the spec exposes a canonical query probe — the
        contract the streaming service (:mod:`repro.serve`) requires to
        answer ``QUERY <op>`` against a published snapshot.  Servable
        specs are exactly the ones :func:`servable` enumerates."""
        return self.probe is not None

    def probe_source(self) -> str:
        """Human-readable signature of the canonical query probe.

        For ``lambda op: ...`` probes this is the lambda body (e.g.
        ``op.query()``); for named probe functions, the function name
        with its body's return expression when recoverable.  ``repro
        ops --verbose`` and the docs/api.md operator table surface this
        so the query surface each operator serves is discoverable
        without reading its module.  Returns ``"-"`` when the spec has
        no probe.
        """
        if self.probe is None:
            return "-"
        try:
            src = inspect.getsource(self.probe)
        except (OSError, TypeError):
            return getattr(self.probe, "__qualname__", repr(self.probe))
        src = " ".join(textwrap.dedent(src).split())
        lam = re.search(r"lambda op:\s*(.*)", src)
        if lam is not None:
            return _trim_expression(lam.group(1))
        # A named probe function: show `name(op)`, preferring its
        # single return expression when the body is that simple.
        name = getattr(self.probe, "__name__", "probe")
        ret = re.search(r"return\s+(.+?)\s*$", src)
        if ret is not None and src.count("return") == 1:
            return ret.group(1)
        return f"{name}(op)"


def _trim_expression(text: str) -> str:
    """Trim register-call syntax trailing a probe lambda's body: the
    keyword-argument comma and any close-delimiters that belong to the
    enclosing ``register(...)`` call rather than the expression."""
    text = text.strip().rstrip(",").strip()
    while text and text[-1] in ")]}":
        opens = text.count("(") + text.count("[") + text.count("{")
        closes = text.count(")") + text.count("]") + text.count("}")
        if closes <= opens:
            break
        text = text[:-1].rstrip().rstrip(",").rstrip()
    return text


_REGISTRY: dict[str, SynopsisSpec] = {}


def register(
    cls: type,
    *,
    summary: str,
    input: str,
    caps: Capabilities,
    build: Callable[[], Any],
    probe: Callable[[Any], Any] | None = None,
    name: str | None = None,
) -> SynopsisSpec:
    """Declare a synopsis.  Called once at the bottom of each operator
    module; re-registration of the same class is a no-op replace (module
    reloads), while a name collision between two classes is an error."""
    if input not in (ITEMS, BITS):
        raise ValueError(f"input must be {ITEMS!r} or {BITS!r}, got {input!r}")
    name = name if name is not None else cls.__name__
    existing = _REGISTRY.get(name)
    if existing is not None and existing.cls.__qualname__ != cls.__qualname__:
        raise ValueError(
            f"registry name {name!r} already bound to {existing.cls!r}"
        )
    spec = SynopsisSpec(
        name=name, cls=cls, summary=summary, input=input,
        caps=caps, build=build, probe=probe,
    )
    _REGISTRY[name] = spec
    return spec


def get(name: str) -> SynopsisSpec:
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no synopsis named {name!r}; known: {', '.join(names())}"
        ) from None


def names() -> list[str]:
    """Registered names, sorted."""
    load_all()
    return sorted(_REGISTRY)


def specs() -> list[SynopsisSpec]:
    """All registered specs in name order (deterministic sweeps)."""
    load_all()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def registered(module_prefix: str | None = None) -> list[SynopsisSpec]:
    """Specs registered *so far*, in name order, without triggering
    :func:`load_all` — for import-time consumers (the span catalog in
    ``repro.core.__init__`` runs mid-import and must not re-enter the
    package machinery).  Optionally filtered by class-module prefix."""
    out = [_REGISTRY[name] for name in sorted(_REGISTRY)]
    if module_prefix is not None:
        out = [s for s in out if s.cls.__module__.startswith(module_prefix)]
    return out


def servable(module_prefix: str | None = None) -> list[SynopsisSpec]:
    """Specs that declare a canonical query probe, in name order — the
    operator set :mod:`repro.serve` offers tenants (each ``HELLO`` names
    a subset of these; ``QUERY <op>`` runs the probe against the
    tenant's latest published snapshot).  Optionally filtered by
    class-module prefix, like :func:`registered`."""
    out = [s for s in specs() if s.servable]
    if module_prefix is not None:
        out = [s for s in out if s.cls.__module__.startswith(module_prefix)]
    return out


def create(name: str, **kwargs: Any) -> Any:
    """Instantiate a registered synopsis — the CLI's factory path."""
    return get(name).cls(**kwargs)


def load_all() -> list[SynopsisSpec]:
    """Import every operator package so their registrations run.

    Import is the registration mechanism (each module registers itself
    at the bottom), so this is idempotent and cheap after the first
    call.  Kept lazy to avoid import cycles: the registry itself must
    not depend on the operator packages at module level.
    """
    import repro.baselines  # noqa: F401
    import repro.core  # noqa: F401

    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def sample_feed(kind: str, n: int = 200, seed: int = 9):
    """A deterministic conformance stream for a spec's ``input`` kind:
    a skewed item stream over a small universe, or 0/1 bits."""
    import numpy as np

    if kind == BITS:
        return (np.random.default_rng(seed).random(n) < 0.5).astype(np.int64)
    from repro.stream.generators import zipf_stream

    return zipf_stream(n, 64, 1.2, rng=seed + 1)
