"""repro.engine — the unified synopsis engine (registry + dataflow).

Three coordinated pieces, one contract:

``repro.engine.registry``
    a runtime-checkable :class:`~repro.engine.registry.Synopsis`
    protocol with per-operator capability flags, plus a declarative
    registry of factories covering every operator `repro.core` and
    `repro.baselines` export.  The CLI, conformance sweeps, checkpoint
    audits, span catalog, and profiler all iterate it instead of
    hard-coding operator lists.
``repro.engine.graph``
    the driver's per-batch recipe as an explicit dataflow DAG
    (source → prepare → operator fan-out → fold) schedulable over the
    Serial / Thread / Process backends, with the shared
    ``PreparedBatch`` as a first-class node.
``repro.engine.mergetree``
    k-ary merge trees over mergeable summaries: the fold phase of a
    sharded ingest at O(log_k S) charged depth instead of Θ(S).

See ``docs/architecture.md`` for how the engine sits between the PRAM
substrate and the streaming/tooling layers.
"""

from repro.engine import registry
from repro.engine.graph import DataflowGraph, Node, operator_graph
from repro.engine.mergetree import merge_partials, merge_tree_ingest, shard_partials
from repro.engine.registry import Capabilities, Synopsis, SynopsisSpec

__all__ = [
    "registry",
    "Synopsis",
    "Capabilities",
    "SynopsisSpec",
    "DataflowGraph",
    "Node",
    "operator_graph",
    "shard_partials",
    "merge_partials",
    "merge_tree_ingest",
]
