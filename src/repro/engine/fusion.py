"""Fused multi-operator ingest kernels over one shared batch plan.

PR 3 removed the N-fold *prework* (one :class:`PreparedBatch` per
minibatch feeds every operator); this module removes the N-fold
*kernel* cost that remained.  Profiling the 8-operator E16 pipeline
(``repro profile --experiment e16``) shows steady-state ingest time
concentrated in two places:

1. **hash evaluation** — every Count-Min / Count-Sketch row walks its
   own Horner chain over the same key vector (30 separate polynomial
   evaluations per batch on E16), each a fresh NumPy dispatch chain
   with temporaries;
2. **per-row gathers** — one ``bincount`` + ``astype`` + ``+=`` per
   (operator, row), dominated by the width-proportional passes over
   each row's output.

A :class:`FusedIngestPlan` collapses both across *all* fused operators:

* the polynomial coefficients of every (operator, row) hash are stacked
  into one ``(R, k_max)`` matrix (leading-zero padded — Horner over
  leading zeros evaluates the same polynomial), so one vectorized
  mod-Mersenne Horner pass yields every hash column at once; the
  stacked matrix is memoized on the plan and rebuilt only when an
  operator's hash objects change (e.g. ``load_state``);
* the Horner chain is division-free: each ``% p`` becomes two Mersenne
  folds (``2^31 ≡ 1 (mod p)``, so ``y → (y >> 31) + (y & p)`` preserves
  the residue), trading the non-vectorizable hardware division for
  shift/mask/add and leaving exactly one division pass (the per-row
  range map) in the whole kernel;
* the per-row gathers become **sparse integer scatters**: instead of
  the serial width-proportional passes per row (``bincount`` zero-fill
  + ``astype`` + dense ``+=``), every row applies its batch delta with
  one ``np.add.at`` over the ~|batch| distinct keys — on a fine
  Count-Sketch row (width 750 000, ≈3 600 distinct keys) that is three
  orders of magnitude less memory traffic;
* scratch lives in a :class:`~repro.pram.arena.BatchArena`: high-water
  buffers keyed by shape class, reused across minibatches, so
  steady-state ingest performs zero per-batch scratch allocations on
  the int fast path (observable via span ``alloc_blocks`` counters and
  the ``repro_arena_*`` gauges).

Exactness.  The kernel phase runs under a throwaway scratch ledger;
operators then replay their serial charges bit-identically
(``KWiseHash.charge_eval`` + the gather charge) in :meth:`ingest_fused`.
Values are bit-identical too: the lazy Horner residues stay congruent
(mod p) to the serial chain and one exact conditional subtract lands
them in ``[0, p)`` before the range map, so every column and sign
equals ``KWiseHash.__call__``'s; each table cell then receives the
same integer sum the serial path computed (its float64 bincount sums
are integers below 2**53, so its ``.astype(np.int64)`` + dense ``+=``
adds exactly the per-bucket sum of signed frequencies — which is what
the integer scatter adds directly).  The ``fused`` fuzz relation and
bench E18 assert both.

Operators that cannot fuse (conservative-update CMS, the MG family,
dyadic stacks) fall back to their own ``ingest_prepared`` /
``ingest`` inside the same execution, in mapping order, so a mixed
pipeline stays a drop-in replacement for the serial loop.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.observability.metrics import REGISTRY
from repro.pram.arena import BatchArena
from repro.pram.cost import CostLedger, tracking
from repro.pram.hashing import MERSENNE_P, fold_schedule, mersenne_fold

__all__ = ["FusedIngestPlan"]

# Kernel constants as ready-made uint64 scalars: p = 2^31 - 1 is the
# KWiseHash Mersenne prime, and 2^31 ≡ 1 (mod p) is what makes the
# shift-and-add fold in :func:`~repro.pram.hashing.mersenne_fold`
# residue-preserving.
_PRIME = np.uint64(MERSENNE_P)
_ONE = np.uint64(1)

_M_FUSED_BATCHES = REGISTRY.counter(
    "repro_fused_batches_total",
    "minibatches ingested through the fused multi-operator kernel",
)
_M_ARENA_BYTES = REGISTRY.gauge(
    "repro_arena_bytes",
    "bytes held by the fused-ingest BatchArena's high-water buffers",
)
_M_ARENA_REUSE = REGISTRY.gauge(
    "repro_arena_reuse_ratio",
    "fraction of arena takes served without allocating (1.0 = steady state)",
)


class _Group:
    """One fused operator's contiguous run of stacked gather rows."""

    __slots__ = ("name", "op", "rows", "width", "row_lo", "row_hi", "signed")

    def __init__(self, name: str, op: Any, rows: int, width: int, row_lo: int) -> None:
        self.name = name
        self.op = op
        self.rows = rows
        self.width = width
        self.row_lo = row_lo
        self.row_hi = row_lo + rows
        self.signed = False


class FusedIngestPlan:
    """One batched ingest kernel over every fusable operator in a
    pipeline, serial-exact in states and ledger charges.

    Parameters
    ----------
    operators:
        The pipeline's live name → operator mapping (the same dict the
        driver iterates — held by reference, not copied, so operator
        replacement is observed).
    arena:
        Scratch :class:`~repro.pram.arena.BatchArena`; a private one is
        created when omitted.  Sharing an arena across plans is safe as
        long as their ``execute`` calls don't interleave.
    """

    def __init__(
        self, operators: Mapping[str, Any], arena: BatchArena | None = None
    ) -> None:
        self.operators = operators
        self.arena = arena if arena is not None else BatchArena()
        self._build()

    # ------------------------------------------------------------------
    @staticmethod
    def _gathers_of(op: Any) -> list[tuple[Any, int, Any]] | None:
        """The operator's fused gather rows, or ``None`` when it must
        fall back to its own serial path."""
        if callable(getattr(op, "fused_gathers", None)) and callable(
            getattr(op, "ingest_fused", None)
        ):
            return op.fused_gathers() or None
        return None

    def _signature(self) -> list[tuple[str, int, tuple | None]]:
        """Identity fingerprint of the stacked kernel inputs.  Hash
        *objects* are compared by id: ``load_state`` swaps in fresh
        ``KWiseHash`` instances, which must trigger a restack."""
        sig = []
        for name, op in self.operators.items():
            gathers = self._gathers_of(op)
            fused = (
                tuple((id(h), width, id(s)) for h, width, s in gathers)
                if gathers
                else None
            )
            sig.append((name, id(op), fused))
        return sig

    def _build(self) -> None:
        order: list[tuple[str, Any, str]] = []
        fusable: list[tuple[str, Any, list[tuple[Any, int, Any]]]] = []
        for name, op in self.operators.items():
            gathers = self._gathers_of(op)
            if gathers and any(w != gathers[0][1] for _, w, _ in gathers):
                gathers = None  # heterogeneous row widths: not stackable
            if gathers:
                order.append((name, op, "fused"))
                fusable.append((name, op, gathers))
            elif callable(getattr(op, "ingest_prepared", None)):
                order.append((name, op, "prepared"))
            else:
                order.append((name, op, "plain"))
        # Stack groups in descending hash degree (stable within a
        # degree) so the kernel's per-degree evaluation runs touch
        # contiguous row slices instead of interleaved k=4 / k=2 rows.
        fusable.sort(key=lambda item: -max(h.k for h, _, _ in item[2]))
        groups: list[_Group] = []
        gather_hashes: list[Any] = []  # rows 0..G-1 of the stacked matrix
        sign_hashes: list[Any] = []  # rows G.. of the stacked matrix
        sign_pairs: list[tuple[int, int]] = []  # (gather row, sign row)
        for name, op, gathers in fusable:
            groups.append(
                _Group(name, op, len(gathers), gathers[0][1], len(gather_hashes))
            )
            for h, width, sign in gathers:
                if sign is not None:
                    sign_pairs.append((len(gather_hashes), len(sign_hashes)))
                    sign_hashes.append(sign)
                gather_hashes.append(h)
        self._order = order
        self._groups = groups
        self._sign_pairs = sign_pairs
        self._n_gather = len(gather_hashes)
        all_hashes = gather_hashes + sign_hashes
        if all_hashes:
            kmax = max(h.k for h in all_hashes)
            coeffs = np.zeros((len(all_hashes), kmax), dtype=np.uint64)
            for row, h in enumerate(all_hashes):
                # Right-aligned: row coeffs occupy the low-order slots,
                # so a degree-(k-1) row reads ``coeffs[row, kmax-k:]``.
                coeffs[row, kmax - h.k :] = h.coeffs
            self._coeffs = coeffs
            self._ranges = np.fromiter(
                (h.range_size for h in all_hashes),
                dtype=np.uint64,
                count=len(all_hashes),
            )
            self._signs_are_bits = all(h.range_size == 2 for h in sign_hashes)
            # Maximal runs of equal-degree rows: each run is evaluated
            # with exactly the passes its own degree needs.
            ks = [h.k for h in all_hashes]
            runs: list[tuple[int, int, int, tuple[int, ...] | None]] = []
            lo = 0
            for row in range(1, len(ks) + 1):
                if row == len(ks) or ks[row] != ks[lo]:
                    k = ks[lo]
                    plan = fold_schedule(k) if k > 4 else None
                    runs.append((lo, row, k, plan))
                    lo = row
            self._runs = runs
            self._pow_max = max(
                [k - 1 for _, _, k, plan in runs if plan is None] + [1]
            )
            # Flat column offset per gather row: row i of a group's
            # table lives at [i*width, (i+1)*width) in the table's flat
            # view, so adding the offset up front lets each operator
            # apply ALL its rows with one scatter.
            self._flat_offsets = np.concatenate(
                [
                    np.arange(grp.rows, dtype=np.uint64) * np.uint64(grp.width)
                    for grp in groups
                ]
            )[:, None] if groups else np.zeros((0, 1), dtype=np.uint64)
            # Bucket arithmetic drops to uint32 (half the memory traffic
            # of the division pass) whenever every row width fits — the
            # buffer only ever holds row-relative buckets < width; the
            # flat offset is added during the cast to the intp scatter
            # index, which always has full range.
            gathers = len(gather_hashes)
            self._cols32 = all(grp.width <= 0xFFFFFFFF for grp in groups)
            self._ranges32 = self._ranges[:gathers, None].astype(np.uint32)
            self._offsets_p = self._flat_offsets.astype(np.intp)
            signed_rows = {g for g, _ in sign_pairs}
            for grp in groups:
                grp.signed = any(
                    r in signed_rows for r in range(grp.row_lo, grp.row_hi)
                )
            self._unsigned_fill = [
                r
                for grp in groups
                if grp.signed
                for r in range(grp.row_lo, grp.row_hi)
                if r not in signed_rows
            ]
            # Sign-free groups (Count-Min) share one tiled-frequency
            # buffer — freqs broadcast once per batch instead of per op,
            # so every operator scatters a contiguous arena view.
            self._max_unsigned_rows = max(
                [grp.rows for grp in groups if not grp.signed] + [0]
            )
            # When the sign pairs line up as one aligned block (the
            # common case: k-descending stacking puts every signed
            # gather row first, signs in matching order), the per-pair
            # weight multiplies collapse into a single sliced ufunc call.
            self._sign_block = (
                (sign_pairs[0][0], sign_pairs[0][1], len(sign_pairs))
                if sign_pairs
                and all(
                    g == sign_pairs[0][0] + i and s == sign_pairs[0][1] + i
                    for i, (g, s) in enumerate(sign_pairs)
                )
                else None
            )
        else:
            self._coeffs = np.zeros((0, 1), dtype=np.uint64)
            self._ranges = np.zeros(0, dtype=np.uint64)
            self._signs_are_bits = True
            self._runs = []
            self._pow_max = 1
            self._flat_offsets = np.zeros((0, 1), dtype=np.uint64)
            self._cols32 = True
            self._ranges32 = np.zeros((0, 1), dtype=np.uint32)
            self._offsets_p = np.zeros((0, 1), dtype=np.intp)
            self._unsigned_fill = []
            self._sign_block = None
            self._max_unsigned_rows = 0
        self._workspaces: dict[int, dict[str, Any]] = {}
        self._sig = self._signature()

    # ------------------------------------------------------------------
    def _exact_reduce(self, arr: np.ndarray, mask: np.ndarray) -> None:
        """Land values known < 2p exactly in ``[0, p)``: one conditional
        subtract (``mask`` is same-shape bool scratch)."""
        np.greater_equal(arr, _PRIME, out=mask)
        np.subtract(arr, _PRIME, out=arr, where=mask)

    def _workspace(self, p: int) -> dict[str, Any]:
        """Arena views (and the output mapping over them) for one batch
        size, cached so steady-state batches skip the per-call
        ``arena.take`` walk and slice construction entirely.

        Validity is stamped with the arena's miss counter: a take for a
        *different* batch size that outgrows (reallocates) any buffer
        bumps the counter and invalidates every cached workspace; equal
        stamps mean every underlying buffer object is unchanged, so the
        views still alias live storage.
        """
        ws = self._workspaces.get(p)
        if ws is not None and ws["stamp"] == self.arena.misses:
            # Credit the takes this hit skipped, so the arena's reuse
            # ratio still reflects steady-state behavior.
            self.arena.hits += ws["ntakes"]
            return ws
        arena = self.arena
        takes_before = arena.hits + arena.misses
        n_rows, _ = self._coeffs.shape
        gathers = self._n_gather
        x = arena.take("x", (p,), np.uint64)
        ws = {
            "x": x,
            "xs": arena.take("xs", (p,), np.uint64),
            "xge": arena.take("xge", (p,), np.bool_),
            "powers": [None, x]
            + [
                arena.take(f"x{e}", (p,), np.uint64)
                for e in range(2, self._pow_max + 1)
            ],
            "acc": arena.take("acc", (n_rows, p), np.uint64),
            "scratch": arena.take("acc_scratch", (n_rows, p), np.uint64),
            "ge": arena.take("ge", (n_rows, p), np.bool_),
            "cols": arena.take("cols", (gathers, p), np.intp),
        }
        if self._cols32:
            ws["cols32"] = arena.take("cols32", (gathers, p), np.uint32)
        weights = None
        if self._sign_pairs:
            ws["sgn"] = arena.take("sgn", (n_rows - gathers, p), np.int64)
            weights = arena.take("iw", (gathers, p), np.int64)
            ws["iw"] = weights
        fw = None
        if self._max_unsigned_rows:
            fw = arena.take("fw", (self._max_unsigned_rows, p), np.int64)
            ws["fw"] = fw
        cols = ws["cols"]
        ws["out"] = {
            grp.name: (
                cols[grp.row_lo : grp.row_hi],
                weights[grp.row_lo : grp.row_hi]
                if grp.signed
                else fw[: grp.rows],
            )
            for grp in self._groups
        }
        # Stamp after the takes: they may themselves have allocated.
        ws["ntakes"] = arena.hits + arena.misses - takes_before
        ws["stamp"] = self.arena.misses
        if len(self._workspaces) > 64:
            self._workspaces.clear()
        self._workspaces[p] = ws
        return ws

    def _kernel(
        self, keys: np.ndarray, freqs: np.ndarray
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """The fused pass: stacked division-free polynomial evaluation,
        then signed integer weights per gather row.  Runs entirely in
        arena scratch; charges nothing (callers replay the serial
        charges per op).

        Degree ≤ 3 rows (every Count-Min / Count-Sketch hash) use the
        sum-of-powers form ``Σ c_j·x^j`` with the powers pre-reduced to
        ``[0, p)``: at most four terms, each ``< (p−1)²``, sum
        ``≤ 4(p−1)² = (2^32−4)² < 2^64`` — no mid-chain reduction at
        all.  Higher degrees fall back to a fold-scheduled Horner chain
        (:meth:`_schedule_folds`).  Either way values stay congruent
        (mod p) to the serial chain, two final folds bring them under
        2p, and one exact conditional subtract lands every residue in
        ``[0, p)``, equal to ``KWiseHash.__call__``'s.

        Returns name → ``(cols, weights)``: ``(rows, |keys|)`` views
        into arena scratch, valid until the next kernel call.  ``cols``
        are *flat* columns — row ``i``'s bucket plus ``i·width`` — so an
        operator applies all its rows with one scatter into its table's
        flat view.
        """
        p = int(keys.size)
        ws = self._workspace(p)
        x = ws["x"]
        xs = ws["xs"]
        xmask = ws["xge"]
        np.copyto(x, keys, casting="unsafe")
        mersenne_fold(x, xs)
        mersenne_fold(x, xs)
        self._exact_reduce(x, xmask)
        powers = ws["powers"]
        for e in range(2, self._pow_max + 1):
            xe = powers[e]
            np.multiply(powers[e - 1], x, out=xe)
            mersenne_fold(xe, xs)
            mersenne_fold(xe, xs)
            self._exact_reduce(xe, xmask)
        n_rows, kmax = self._coeffs.shape
        acc = ws["acc"]
        scratch = ws["scratch"]
        for lo, hi, k, fold_plan in self._runs:
            cs = self._coeffs[lo:hi, kmax - k :]
            a = acc[lo:hi]
            if fold_plan is None:
                if k == 1:
                    np.copyto(a, cs)
                    continue
                s = scratch[lo:hi]
                np.multiply(cs[:, :1], powers[k - 1], out=a)
                for j in range(1, k - 1):
                    np.multiply(cs[:, j : j + 1], powers[k - 1 - j], out=s)
                    np.add(a, s, out=a)
                np.add(a, cs[:, k - 1 :], out=a)
            else:
                s = scratch[lo:hi]
                np.copyto(a, cs[:, :1])
                for j in range(1, k):
                    np.multiply(a, x, out=a)
                    np.add(a, cs[:, j : j + 1], out=a)
                    for _ in range(fold_plan[j - 1]):
                        mersenne_fold(a, s)
        # Two folds bound every row by p + 5 < 2p, then the exact
        # conditional subtract and the range map — a division pass over
        # the gather rows only; sign rows (range 2) take a bit mask.
        mersenne_fold(acc, scratch)
        mersenne_fold(acc, scratch)
        self._exact_reduce(acc, ws["ge"])
        gathers = self._n_gather
        cols = ws["cols"]
        if self._cols32:
            # Residues < p fit uint32 (and so do the row widths, guarded
            # at build): half the traffic through the division pass.
            # The final add promotes to intp — ufunc.at's fast unbuffered
            # path needs a flat intp index, so the offset add doubles as
            # the cast.
            b32 = ws["cols32"]
            np.copyto(b32, acc[:gathers], casting="unsafe")
            np.mod(b32, self._ranges32, out=b32)
            np.add(b32, self._offsets_p, out=cols, casting="unsafe")
        else:
            buckets = acc[:gathers]
            np.mod(buckets, self._ranges[:gathers, None], out=buckets)
            np.add(buckets, self._flat_offsets, out=cols, casting="unsafe")
        if self._sign_pairs:
            if self._signs_are_bits:
                np.bitwise_and(acc[gathers:], _ONE, out=acc[gathers:])
            else:
                np.mod(acc[gathers:], self._ranges[gathers:, None], out=acc[gathers:])
            sgn = ws["sgn"]
            np.copyto(sgn, acc[gathers:], casting="unsafe")  # {0, 1}
            np.multiply(sgn, 2, out=sgn)
            np.subtract(sgn, 1, out=sgn)  # {-1, +1}
            # Signed rows get sign·frequency written in one pass each.
            weights = ws["iw"]
            if self._sign_block is not None:
                g0, s0, n = self._sign_block
                np.multiply(sgn[s0 : s0 + n], freqs, out=weights[g0 : g0 + n])
            else:
                for g, s in self._sign_pairs:
                    np.multiply(sgn[s], freqs, out=weights[g])
            for g in self._unsigned_fill:
                np.copyto(weights[g], freqs)
        if self._max_unsigned_rows:
            np.copyto(ws["fw"], freqs)  # one broadcast tile, shared by all
        return ws["out"]

    def execute(self, plan: Any) -> None:
        """Ingest one :class:`~repro.pram.plan.PreparedBatch` into every
        operator — fused rows through the stacked kernel, the rest
        through their own serial paths, all in mapping order."""
        if self._signature() != self._sig:
            self._build()
        batched: dict[str, tuple[np.ndarray, np.ndarray]] | None = None
        if plan.size and self._n_gather:
            # The kernel's plan accesses land on a throwaway ledger; the
            # plan caches the measured first-compute cost, and each
            # operator's replay below charges the real ledger exactly
            # what a serial first access would have.
            with tracking(CostLedger()):
                keys, freqs = plan.sketch_hist()
            batched = self._kernel(keys, freqs)
        for name, op, kind in self._order:
            if kind == "fused":
                op.ingest_fused(plan, None if batched is None else batched[name])
            elif kind == "prepared":
                op.ingest_prepared(plan)
            else:
                op.ingest(plan.raw)
        _M_FUSED_BATCHES.inc()
        _M_ARENA_BYTES.set(float(self.arena.nbytes))
        _M_ARENA_REUSE.set(self.arena.reuse_ratio)

    # ------------------------------------------------------------------
    @property
    def fused_names(self) -> list[str]:
        """Names of the operators the stacked kernel covers."""
        return [grp.name for grp in self._groups]
