"""Shared concurrency layer: epoch publication, snapshot-consistent
reads, and thread-local buffered ingest.

The epoch/snapshot machinery (:class:`SnapshotStore`, :class:`Snapshot`)
moved here from ``repro.serve.snapshot`` so the serve tier, the
minibatch driver's concurrent-query mode, and the buffered concurrent
ingest path (:class:`ConcurrentIngestor`) all share one implementation
and one consistency model (docs/architecture.md)."""

from repro.concurrent.buffers import ConcurrentIngestor, LocalBuffer
from repro.concurrent.epoch import Snapshot, SnapshotStore

__all__ = ["Snapshot", "SnapshotStore", "LocalBuffer", "ConcurrentIngestor"]
