"""Epoch publication and snapshot-consistent reads: the shared layer.

This module is the epoch/snapshot machinery that previously lived in
``repro.serve.snapshot`` (which still re-exports it for back-compat),
refactored out so every layer that needs a consistency point can share
one implementation: the serve tier's per-tenant sessions, the
:class:`~repro.stream.minibatch.MinibatchDriver`'s concurrent-query
mode, the thread-local buffered ingest path
(:mod:`repro.concurrent.buffers`), and the fuzzer's ``staleness``
relation.

The merge algebra guarantees (docs/serving.md, [ACH+13]) that after any
processed minibatch the driver's operator state *is* the exact serial
fold of everything ingested so far — shard partials included, because
``MinibatchDriver.run`` folds them before returning.  That makes a
batch boundary the natural consistency point: copy each operator's
state there and any number of readers can query the copy while the live
operator ingests the next batch, with every answer attributable to one
well-defined stream prefix.

:class:`SnapshotStore` keeps **two** buffers per operator and
alternates publishes between them (classic double buffering): the front
buffer is what :meth:`SnapshotStore.read` hands out; a publish writes
the live state into the *back* buffer, swaps the roles, and bumps the
**epoch** counter.  Readers therefore never block the ingest path and
the ingest path never mutates an object a current-epoch reader holds.

A reader that may suspend (or run off-loop, or on another thread)
between grabbing a snapshot and finishing its query uses
:meth:`SnapshotStore.query`, a seqlock-style helper: it re-checks the
epoch after the probe and retries when two or more publishes landed
mid-read (one publish is safe — it targets the other buffer).  Pure
in-loop readers can call :meth:`SnapshotStore.read` directly, since
asyncio's single thread means no publish can interleave with a
synchronous probe.

Publication itself is serialized by an internal lock, so concurrent
publishers (the buffered ingest path flushes from worker threads) can
never interleave a half-written back buffer with a swap.  Readers take
no lock at all: ``read`` is one attribute load of an immutable
:class:`Snapshot`, and the epoch counter only ever moves forward while
the lock is held — the contention test in ``tests/test_concurrent.py``
hammers exactly this pairing.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.observability.metrics import REGISTRY

__all__ = ["Snapshot", "SnapshotStore"]

# Epoch-layer metrics (catalog: docs/observability.md).
_M_PUBLISHED = REGISTRY.counter(
    "repro_epoch_published_total",
    "Snapshot epochs published across all stores",
)
_M_EPOCH = REGISTRY.gauge(
    "repro_epoch_current",
    "Latest published epoch per named snapshot store",
    labels=("store",),
)


@dataclass(frozen=True)
class Snapshot:
    """One published consistency point: an epoch and the operator copies
    that hold the exact fold of the stream prefix at that epoch."""

    epoch: int
    operators: Mapping[str, Any]
    #: Items folded into the live operators when this epoch published.
    items: int

    def __contains__(self, name: str) -> bool:
        return name in self.operators

    def __getitem__(self, name: str) -> Any:
        return self.operators[name]


def _clone(op: Any) -> Any:
    """A state-carrying copy of ``op`` (buffer bootstrap)."""
    return pickle.loads(pickle.dumps(op))


class SnapshotStore:
    """Double-buffered, epoch-stamped snapshots over live operators.

    Parameters
    ----------
    operators:
        The live named operators (the ones the driver ingests into).
        Each needs either ``state_dict``/``load_state`` (preferred —
        publishes reuse the buffer clones allocation-free) or plain
        picklability (fallback — publishes re-pickle).
    name:
        Optional store label for the ``repro_epoch_current`` gauge
        (tenant id in the serve tier, ``driver`` for the minibatch
        driver's concurrent-query mode).  Unnamed stores skip the
        gauge, so throwaway stores never leak label cardinality.
    """

    def __init__(
        self, operators: Mapping[str, Any], *, name: str | None = None
    ) -> None:
        if not operators:
            raise ValueError("need at least one operator to snapshot")
        self._live = dict(operators)
        self.name = name
        self._codec_ok = all(
            hasattr(op, "state_dict") and hasattr(op, "load_state")
            for op in self._live.values()
        )
        self._buffers = (
            {name_: _clone(op) for name_, op in self._live.items()},
            {name_: _clone(op) for name_, op in self._live.items()},
        )
        self._front = 0
        self.epoch = 0
        #: Serializes publishers; readers never take it.
        self._publish_lock = threading.Lock()
        self._snapshot = Snapshot(
            epoch=0, operators=dict(self._buffers[0]), items=0
        )

    # ------------------------------------------------------------------
    def publish(self, *, items: int = 0) -> int:
        """Copy live state into the back buffer, swap, bump the epoch.

        Called by the ingest path on batch boundaries (driver, serve)
        or buffer-flush boundaries (:mod:`repro.concurrent.buffers`) —
        points where operator state equals the exact fold of a
        well-defined item multiset.  Publishers serialize on an
        internal lock; a publish never blocks :meth:`read`.  Returns
        the new epoch.
        """
        with self._publish_lock:
            back = self._buffers[1 - self._front]
            if self._codec_ok:
                for name_, live in self._live.items():
                    back[name_].load_state(live.state_dict())
            else:
                for name_, live in self._live.items():
                    back[name_] = _clone(live)
            self._front = 1 - self._front
            epoch = self.epoch + 1
            # The new Snapshot becomes visible atomically (one store),
            # and only after the back buffer is fully rewritten.
            self._snapshot = Snapshot(
                epoch=epoch, operators=dict(back), items=items
            )
            self.epoch = epoch
        _M_PUBLISHED.inc()
        if self.name is not None:
            _M_EPOCH.set(epoch, store=self.name)
        return epoch

    def read(self) -> Snapshot:
        """The latest published snapshot — a reference grab, never a
        copy, never blocking.  Valid until *two* further publishes."""
        return self._snapshot

    def query(self, fn: Callable[[Snapshot], Any], retries: int = 8) -> tuple[int, Any]:
        """Run ``fn(snapshot)`` with seqlock semantics: if two or more
        epochs published while ``fn`` ran (possible only for readers
        that suspend or run off-loop), the buffer ``fn`` read may have
        been rewritten — retry against the fresh snapshot.  Returns
        ``(epoch, result)`` for the epoch the result is consistent
        with."""
        for _ in range(retries):
            snap = self.read()
            result = fn(snap)
            if self.epoch - snap.epoch < 2:
                return snap.epoch, result
        # Pathologically hot publisher: serialize against it so the
        # final read cannot be overwritten mid-probe; callers on the
        # event loop never get here.
        with self._publish_lock:
            snap = self.read()
            return snap.epoch, fn(snap)
