"""Thread-local buffer sketches with bounded-staleness snapshots.

The concurrent-sketch fast path in the style of Fast Concurrent Data
Sketches (Rinberg et al., PAPERS.md): instead of serializing every
update into one shared synopsis, each ingest strand folds its slice of
the minibatch into a **private buffer sketch** (an ``op.fresh_clone()``
— the same mergeable-summaries property that licenses ``shard_ingest``
and the k-ary merge tree).  A buffer that reaches its fill mark is
**flushed**: merged into the global operator under a short lock, after
which a fresh epoch is published to a shared
:class:`~repro.concurrent.epoch.SnapshotStore`.  Queries read published
snapshots only, so they never block the ingest path and never observe a
half-merged buffer.

The price of never blocking is **bounded staleness** instead of
batch-boundary exactness (docs/architecture.md, "Consistency model"):

* with ``buffer_items=B`` and ``threads=T``, every buffer flushes at
  ``max(1, B // T)`` pending items and strands slice their input so a
  buffer never overshoots that mark, so the *total* unflushed backlog
  never exceeds B items;
* every published snapshot therefore reflects every ingested item
  except at most B buffered ones — the ε-staleness envelope the
  fuzzer's ``staleness`` relation checks (the answer must lie within
  the oracle envelope of the flushed multiset, which trails the full
  stream by at most B items);
* :meth:`ConcurrentIngestor.sync` flushes every buffer and publishes,
  after which the global state *is* the exact fold of everything
  ingested — bit-identical to serial ingest for the linear sketches
  (CMS/CSK), envelope-equivalent for the MG family, exactly as in the
  merge algebra (tests/test_merge_algebra.py).

Strand execution rides the fork-join machinery of
:mod:`repro.pram.backend`: a persistent
:class:`~repro.pram.backend.ThreadBackend` by default (buffered mode —
one long-lived pool, one strand per buffer), or any other backend; a
:class:`~repro.pram.backend.SerialBackend` makes the whole schedule
deterministic, which is what the fuzz relation and the charged-work
columns of benchmark E19 run under.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.concurrent.epoch import Snapshot, SnapshotStore
from repro.observability.metrics import REGISTRY
from repro.pram.backend import Backend, ThreadBackend, fork_join
from repro.pram.plan import PreparedBatch

__all__ = ["LocalBuffer", "ConcurrentIngestor"]

# Buffer-flush metrics (catalog: docs/observability.md).
_M_FLUSHES = REGISTRY.counter(
    "repro_buffer_flush_total",
    "Thread-local buffer sketches flushed into global state",
    labels=("reason",),
)
_M_FLUSH_ITEMS = REGISTRY.counter(
    "repro_buffer_flush_items_total",
    "Stream items carried by flushed buffer sketches",
)


class LocalBuffer:
    """One strand's private buffer: a fresh clone per operator plus the
    pending-item count since the last flush.

    Buffers are single-owner by construction — strand ``i`` is the only
    writer of buffer ``i`` — so local ingest takes no lock at all; only
    the flush (merge into the global operators) synchronizes.
    """

    def __init__(self, operators: Mapping[str, Any], record: bool = False) -> None:
        self._protos = operators
        self._record = record
        self.ops = {name: op.fresh_clone() for name, op in operators.items()}
        self.pending = 0
        #: Items this buffer has flushed over its lifetime.
        self.flushed = 0
        #: The buffered slices, in arrival order (``record`` only).
        self.slices: list[np.ndarray] = []

    def ingest(self, part: np.ndarray) -> None:
        """Fold one slice into every buffer sketch (shared prework when
        every operator is preparable)."""
        if part.size == 0:
            return
        plan = (
            PreparedBatch(part)
            if all(hasattr(op, "ingest_prepared") for op in self.ops.values())
            else None
        )
        for op in self.ops.values():
            if plan is not None:
                op.ingest_prepared(plan)
            else:
                op.ingest(part)
        if self._record:
            self.slices.append(part)
        self.pending += int(part.size)

    def drain(self) -> np.ndarray:
        """The buffered items as one array (``record`` only) — what a
        flush is about to hand the global state."""
        if not self.slices:
            return np.empty(0, dtype=np.int64)
        return self.slices[0] if len(self.slices) == 1 else np.concatenate(self.slices)

    def reset(self) -> None:
        """Fresh clones, zero pending — called after a flush adopted
        this buffer's state."""
        self.ops = {name: op.fresh_clone() for name, op in self._protos.items()}
        self.flushed += self.pending
        self.pending = 0
        self.slices = []


class ConcurrentIngestor:
    """Per-strand buffer sketches over a shared global operator set.

    Parameters
    ----------
    operators:
        Named *mergeable* operators (``fresh_clone`` + ``merge``) —
        exactly the registry's ``concurrent`` capability
        (docs/architecture.md).  These are the live global objects
        queries must never block.
    buffer_items:
        The staleness bound B: total unflushed items across all
        buffers never exceeds B, so every published snapshot trails
        the ingested stream by at most B items.
    threads:
        Number of buffer strands (clamped to ``buffer_items`` so the
        bound survives tiny B).  Each strand owns one
        :class:`LocalBuffer` with fill mark
        ``max(1, buffer_items // threads)``.
    backend:
        Fork-join backend for the ingest strands.  Default: one
        persistent :class:`~repro.pram.backend.ThreadBackend` sized to
        ``threads`` (buffered mode).  Pass a
        :class:`~repro.pram.backend.SerialBackend` for a fully
        deterministic schedule (fuzzing, charged-work benchmarking).
    snapshots:
        The shared :class:`~repro.concurrent.epoch.SnapshotStore` to
        publish into; built over ``operators`` when omitted.
    record_flushes:
        Keep the flushed slices (in flush order) so a checker can
        reconstruct exactly which multiset each epoch covers — the
        fuzz ``staleness`` relation and E19's envelope audit turn this
        on; production ingest leaves it off.
    """

    def __init__(
        self,
        operators: Mapping[str, Any],
        *,
        buffer_items: int,
        threads: int = 2,
        backend: Backend | None = None,
        snapshots: SnapshotStore | None = None,
        record_flushes: bool = False,
    ) -> None:
        if not operators:
            raise ValueError("need at least one operator")
        if buffer_items < 1:
            raise ValueError(f"buffer_items must be >= 1, got {buffer_items}")
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        for name, op in operators.items():
            for required in ("fresh_clone", "merge"):
                if not hasattr(op, required):
                    raise TypeError(
                        f"operator {name!r} ({type(op).__name__}) has no "
                        f"{required}(); buffered concurrent ingest needs "
                        "mergeable synopses (the registry's 'concurrent' "
                        "capability)"
                    )
        self.operators = dict(operators)
        self.buffer_items = int(buffer_items)
        self.threads = min(int(threads), self.buffer_items)
        #: Per-buffer fill mark; T buffers at this mark keep the total
        #: unflushed backlog at or below B.
        self.fill_mark = max(1, self.buffer_items // self.threads)
        self.backend = (
            backend
            if backend is not None
            else ThreadBackend(max_workers=self.threads, persistent=True)
        )
        self.snapshots = (
            snapshots if snapshots is not None else SnapshotStore(self.operators)
        )
        self._record = bool(record_flushes)
        self._buffers = [
            LocalBuffer(self.operators, record=self._record)
            for _ in range(self.threads)
        ]
        #: Serializes flushes (and the publish that follows a batch of
        #: them) against each other; local buffer ingest never takes it.
        self._flush_lock = threading.Lock()
        self.items_ingested = 0
        self.items_flushed = 0
        #: ``items_flushed`` as of the latest publish — what the
        #: current snapshot covers.
        self.published_items = 0
        self.flushes = 0
        self._flush_log: list[np.ndarray] = []

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self.snapshots.epoch

    def pending_items(self) -> int:
        """Unflushed items across every buffer — always <= B."""
        return sum(buf.pending for buf in self._buffers)

    def flushed_stream(self) -> np.ndarray:
        """The flushed slices concatenated in flush order (requires
        ``record_flushes=True``) — the multiset the latest publishable
        state covers."""
        if not self._record:
            raise ValueError("construct with record_flushes=True")
        if not self._flush_log:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self._flush_log)

    # ------------------------------------------------------------------
    def _flush(self, buf: LocalBuffer, reason: str) -> None:
        """Merge one buffer into the global operators and reset it.
        Runs under the flush lock; callers are ingest strands (reason
        ``full``) or :meth:`sync` (reason ``sync``)."""
        if buf.pending == 0:
            return
        items = buf.pending
        with self._flush_lock:
            for name, op in self.operators.items():
                op.merge(buf.ops[name])
            if self._record:
                self._flush_log.append(buf.drain())
            self.items_flushed += items
            self.flushes += 1
        _M_FLUSHES.inc(reason=reason)
        _M_FLUSH_ITEMS.inc(items)
        buf.reset()

    def _strand(self, buf: LocalBuffer, part: np.ndarray) -> int:
        """One ingest strand: slice ``part`` so the buffer flushes the
        moment it reaches the fill mark — pending never overshoots, so
        the B-item staleness bound is an invariant, not an average."""
        done = 0
        while done < len(part):
            room = self.fill_mark - buf.pending
            take = part[done : done + room]
            buf.ingest(take)
            done += len(take)
            if buf.pending >= self.fill_mark:
                self._flush(buf, "full")
        return done

    def ingest(self, batch: np.ndarray | Sequence[int]) -> None:
        """Partition ``batch`` across the buffer strands, flushing any
        buffer that fills, then publish one fresh epoch if anything
        flushed.  Ingest never waits on readers; readers never see a
        half-merged flush (they hold published snapshots only)."""
        batch = np.asarray(batch)
        if batch.size == 0:
            return
        parts = [p for p in np.array_split(batch, self.threads) if p.size]
        before = self.flushes
        tasks = [
            (lambda b=buf, p=part: self._strand(b, p))
            for buf, part in zip(self._buffers, parts)
        ]
        fork_join(tasks, self.backend)
        self.items_ingested += int(batch.size)
        if self.flushes != before:
            self._publish()

    def _publish(self) -> int:
        with self._flush_lock:
            covered = self.items_flushed
            epoch = self.snapshots.publish(items=covered)
            self.published_items = covered
        return epoch

    def sync(self) -> int:
        """Flush every buffer and publish: the resulting epoch covers
        *everything* ingested so far — the exact serial fold by the
        merge algebra (bit-identical for linear sketches).  Must not
        run concurrently with :meth:`ingest` (both are coordinator
        verbs; the strands inside one ``ingest`` call are the only
        true concurrency).  Returns the new epoch."""
        for buf in self._buffers:
            self._flush(buf, "sync")
        return self._publish()

    # ------------------------------------------------------------------
    def read(self) -> Snapshot:
        return self.snapshots.read()

    def query(self, fn: Callable[[Snapshot], Any]) -> tuple[int, Any]:
        """Seqlock query against the latest published snapshot — see
        :meth:`repro.concurrent.epoch.SnapshotStore.query`."""
        return self.snapshots.query(fn)

    def close(self) -> None:
        """Release the persistent thread pool, if this ingestor owns
        one."""
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()
