"""Command-line front-end: run the paper's aggregates over a file or
stdin of integers.

Examples
--------
Heavy hitters over the whole stream::

    python -m repro heavy-hitters --phi 0.05 --eps 0.01 items.txt

Sliding-window heavy hitters, 1M-item window, reading stdin::

    generator | python -m repro heavy-hitters --phi 0.01 --window 1000000

Basic counting on a 0/1 stream, frequency estimates, windowed sums,
and Count-Min point queries work the same way; ``--report-every``
prints interim answers (the paper's interleaved queries).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.engine import registry
from repro.observability.metrics import REGISTRY
from repro.pram.cost import tracking
from repro.resilience.invariants import InvariantViolation

__all__ = ["main", "build_parser"]

# CLI-level metrics (catalog: docs/observability.md).
_M_CLI_BATCHES = REGISTRY.counter(
    "repro_cli_batches_total", "Minibatches read by the CLI front-end"
)
_M_CLI_ITEMS = REGISTRY.counter(
    "repro_cli_items_total", "Stream elements read by the CLI front-end"
)
_M_CLI_REPORTS = REGISTRY.counter(
    "repro_cli_interim_reports_total", "Interim answers printed (--report-every)"
)


def _read_batches(path: str | None, batch_size: int) -> Iterator[np.ndarray]:
    """Yield int64 minibatches from a whitespace-separated file/stdin."""
    stream = open(path) if path else sys.stdin
    try:
        buffer: list[int] = []
        for line in stream:
            for token in line.split():
                buffer.append(int(token))
                if len(buffer) >= batch_size:
                    yield np.asarray(buffer, dtype=np.int64)
                    buffer = []
        if buffer:
            yield np.asarray(buffer, dtype=np.int64)
    finally:
        if path:
            stream.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel streaming frequency-based aggregates (SPAA 2014)",
    )
    parser.add_argument(
        "--batch", type=int, default=4096, help="minibatch size (default 4096)"
    )
    parser.add_argument(
        "--report-every",
        type=int,
        default=0,
        metavar="K",
        help="print an interim answer every K minibatches",
    )
    parser.add_argument(
        "--costs",
        action="store_true",
        help="print total charged work/depth at the end",
    )
    parser.add_argument(
        "--metrics",
        choices=("prom", "json"),
        default=None,
        metavar="FORMAT",
        help="dump the process metrics registry at the end "
        "(prom = Prometheus text exposition, json = versioned JSON)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="snapshot operator state into DIR (atomic, checksummed)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        metavar="K",
        help="checkpoint every K minibatches (default 16)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore from the latest checkpoint in --checkpoint-dir "
        "before streaming (skips nothing: feed only the new data)",
    )
    parser.add_argument(
        "--audit-every",
        type=int,
        default=0,
        metavar="K",
        help="run the operator's invariant audit every K minibatches",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="S",
        help="elastic sharded ingest with S initial shards (mergeable "
        "operators only — the M flag in `repro ops`)",
    )
    parser.add_argument(
        "--rescale-at",
        default=None,
        metavar="B:S[,B:S...]",
        help="rescale the shard count to S at the start of minibatch B "
        "(0-based), e.g. 100:64,500:4; requires --shards",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    hh = sub.add_parser("heavy-hitters", help="continuous φ-heavy hitters")
    hh.add_argument("--phi", type=float, required=True)
    hh.add_argument("--eps", type=float, default=None)
    hh.add_argument("--window", type=int, default=None,
                    help="sliding-window size (omit for infinite window)")
    hh.add_argument("file", nargs="?", default=None)

    freq = sub.add_parser("frequency", help="frequency estimates for items")
    freq.add_argument("--eps", type=float, required=True)
    freq.add_argument("--window", type=int, default=None)
    freq.add_argument("--query", type=int, nargs="+", required=True,
                      metavar="ITEM", help="items to report at the end")
    freq.add_argument("file", nargs="?", default=None)

    count = sub.add_parser("count", help="1s in a sliding window (0/1 input)")
    count.add_argument("--window", type=int, required=True)
    count.add_argument("--eps", type=float, default=0.1)
    count.add_argument("file", nargs="?", default=None)

    total = sub.add_parser("sum", help="windowed sum of nonnegative ints")
    total.add_argument("--window", type=int, required=True)
    total.add_argument("--eps", type=float, default=0.1)
    total.add_argument("--max-value", type=int, required=True)
    total.add_argument("file", nargs="?", default=None)

    cms = sub.add_parser("cms", help="Count-Min point queries")
    cms.add_argument("--eps", type=float, default=0.001)
    cms.add_argument("--delta", type=float, default=0.01)
    cms.add_argument("--conservative", action="store_true")
    cms.add_argument("--query", type=int, nargs="+", required=True, metavar="ITEM")
    cms.add_argument("file", nargs="?", default=None)

    quant = sub.add_parser(
        "quantile", help="windowed quantiles via the histogram reduction"
    )
    quant.add_argument("--window", type=int, required=True)
    quant.add_argument("--eps", type=float, default=0.05)
    quant.add_argument("--max-value", type=int, required=True)
    quant.add_argument("--buckets", type=int, default=64)
    quant.add_argument("--q", type=float, nargs="+", default=[0.5, 0.95, 0.99])
    quant.add_argument("file", nargs="?", default=None)

    var = sub.add_parser(
        "variance", help="windowed mean/variance via the Sum reduction"
    )
    var.add_argument("--window", type=int, required=True)
    var.add_argument("--eps", type=float, default=0.02)
    var.add_argument("--max-value", type=int, required=True)
    var.add_argument(
        "--eh",
        action="store_true",
        help="use the exponential-histogram operator instead of the Sum "
        "reduction (certified [lo, hi] bounds in the answer)",
    )
    var.add_argument("file", nargs="?", default=None)

    drift = sub.add_parser(
        "drift",
        help="change detection over a windowed mean estimate (the monitor "
        "sees one estimate per minibatch — pass a --batch no larger than "
        "the window so drift can be localized)",
    )
    drift.add_argument("--window", type=int, required=True)
    drift.add_argument("--eps", type=float, default=0.1)
    drift.add_argument("--max-value", type=int, required=True)
    drift.add_argument(
        "--detector",
        choices=("ddm", "ewma"),
        default="ddm",
        help="monitor statistic: ddm = cumulative-mean minimum tracking, "
        "ewma = exponentially weighted moving average vs running baseline",
    )
    drift.add_argument("file", nargs="?", default=None)

    ops = sub.add_parser(
        "ops",
        help="list every registered synopsis with its capability flags "
        "(M=mergeable P=preparable W=windowed I=invariant-checked)",
    )
    ops.add_argument(
        "--verbose",
        action="store_true",
        help="also show each operator's canonical query probe — the "
        "expression `repro serve` answers QUERY with (docs/api.md)",
    )

    serve = sub.add_parser(
        "serve",
        help="multi-tenant asyncio ingest/query server speaking the "
        "serve/v1 line protocol (docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--max-tenants", type=int, default=64,
        help="admission-control cap on live tenant sessions (default 64)",
    )
    serve.add_argument(
        "--quota-rate", type=float, default=None, metavar="ITEMS_PER_SEC",
        help="per-tenant ingest quota (token bucket; default unlimited)",
    )
    serve.add_argument(
        "--quota-burst", type=float, default=None, metavar="ITEMS",
        help="token-bucket burst capacity (default: one second of quota)",
    )
    serve.add_argument(
        "--queue-max", type=int, default=64,
        help="per-tenant bounded-queue capacity in submissions (default 64)",
    )
    serve.add_argument(
        "--high-watermark", type=int, default=None, metavar="DEPTH",
        help="queue depth that parks submitters (default 3/4 of --queue-max)",
    )
    serve.add_argument(
        "--max-seconds", type=float, default=None, metavar="SECONDS",
        help="drain and exit after this long (default: run until SIGINT)",
    )

    client = sub.add_parser(
        "client",
        help="line-protocol client: ingest a file/stdin into a tenant "
        "session and query its operators (docs/serving.md)",
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--tenant", required=True)
    client.add_argument(
        "--ops", required=True, metavar="NAME[,NAME...]",
        help="comma-separated servable operator names (see `repro ops`)",
    )
    client.add_argument(
        "--query", nargs="+", default=None, metavar="NAME",
        help="operators to query after ingest (default: all of --ops)",
    )
    client.add_argument(
        "--stats", action="store_true", help="print session stats at the end"
    )
    client.add_argument(
        "file", nargs="?", default=None,
        help="integers to ingest (default stdin; skipped on a TTY)",
    )

    prof = sub.add_parser(
        "profile",
        help="ledger-vs-wallclock profiler: per-operator attribution "
        "for a canonical experiment workload (docs/observability.md)",
    )
    prof.add_argument(
        "--experiment",
        required=True,
        metavar="ID",
        help="experiment id to profile (e.g. e13; see docs/observability.md)",
    )
    prof.add_argument(
        "--items", type=int, default=100_000, help="workload size (default 100000)"
    )
    prof.add_argument(
        "--no-calibrate",
        action="store_true",
        help="skip the primitive calibration sweep (report only what "
        "the experiment's workload touches)",
    )
    prof.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzer: every registered synopsis vs its "
        "exact oracle and metamorphic variants (docs/testing.md)",
    )
    fuzz.add_argument(
        "--cases", type=int, default=200,
        help="number of cases to run (default 200)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="root seed (default 0)"
    )
    fuzz.add_argument(
        "--ops", nargs="+", default=None, metavar="NAME",
        help="fuzz only these registered operators (default: all)",
    )
    fuzz.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new cases after this many seconds",
    )
    fuzz.add_argument(
        "--soak", action="store_true",
        help="ignore --cases and cycle the registry until the time "
        "budget (default 300 s) runs out",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="SEED_SPEC",
        help="replay one case bit-identically from its fuzz/v1 seed-spec",
    )
    fuzz.add_argument(
        "--replay-file", default=None, metavar="ARTIFACT",
        help="replay the case stored in a repro-fuzzcase/v1 artifact",
    )
    fuzz.add_argument(
        "--artifact-dir", default="fuzzcases", metavar="DIR",
        help="directory for failing-case artifacts (default fuzzcases)",
    )
    fuzz.add_argument(
        "--relations", nargs="+", default=None, metavar="RELATION",
        help="run only these differential relations (e.g. staleness; "
        "default: all that apply)",
    )

    return parser


def _profile(args: argparse.Namespace, out) -> None:
    import json

    from repro.observability.profile import run_profile

    report = run_profile(
        args.experiment, items=args.items, calibrate=not args.no_calibrate
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2), file=out)
    else:
        print(report.render(), file=out)


def _fuzz(args: argparse.Namespace, out) -> int:
    from repro.fuzz import replay_case, run_fuzz
    from repro.fuzz.runner import load_artifact_spec

    seed_spec = args.replay
    if args.replay_file is not None:
        if seed_spec is not None:
            raise ValueError("--replay and --replay-file are mutually exclusive")
        seed_spec = load_artifact_spec(args.replay_file)
    if seed_spec is not None:
        plan, stream, violations = replay_case(seed_spec)
        print(f"replaying {seed_spec}", file=out)
        print(
            f"operator {plan.op}: {len(stream)} items, "
            f"batch {plan.batch_size}, shrink={list(plan.shrink)}",
            file=out,
        )
        if violations:
            for violation in violations:
                print(f"  [{violation.relation}] {violation.detail}", file=out)
            print("result: reproduced", file=out)
            return 1
        print("result: no violation reproduced (already fixed?)", file=out)
        return 0

    report = run_fuzz(
        args.seed,
        cases=args.cases,
        ops=args.ops,
        time_budget=args.time_budget,
        soak=args.soak,
        artifact_dir=args.artifact_dir,
        relations=args.relations,
    )
    print(report.render(), file=out)
    return 0 if report.ok else 1


def _dump_metrics(fmt: str, out) -> None:
    from repro.observability.export import to_json_text, to_prometheus_text
    from repro.observability.metrics import REGISTRY

    text = to_prometheus_text(REGISTRY) if fmt == "prom" else to_json_text(REGISTRY)
    print(text, end="", file=out)


@dataclass(frozen=True)
class _Command:
    """How a CLI subcommand maps onto the synopsis registry.

    ``resolve`` picks the registered operator name and constructor
    kwargs from the parsed arguments (e.g. ``heavy-hitters`` dispatches
    on ``--window``); ``answer`` renders the final/interim query.  The
    operators themselves come from :mod:`repro.engine.registry`, so the
    CLI never hard-codes a class — new synopses become runnable by
    registering them.
    """

    resolve: Callable[[argparse.Namespace], tuple[str, dict[str, Any]]]
    answer: Callable[[Any, argparse.Namespace], Any]


def _resolve_heavy_hitters(args: argparse.Namespace) -> tuple[str, dict[str, Any]]:
    if args.window:
        return "SlidingHeavyHitters", {
            "window": args.window, "phi": args.phi, "eps": args.eps,
        }
    return "InfiniteHeavyHitters", {"phi": args.phi, "eps": args.eps}


def _resolve_frequency(args: argparse.Namespace) -> tuple[str, dict[str, Any]]:
    if args.window:
        return "WorkEfficientSlidingFrequency", {
            "window": args.window, "eps": args.eps,
        }
    return "ParallelFrequencyEstimator", {"eps": args.eps}


def _quantile_kwargs(args: argparse.Namespace) -> dict[str, Any]:
    edges = np.linspace(0, args.max_value + 1, args.buckets + 1)
    return {"window": args.window, "eps": args.eps, "edges": edges}


def _answer_variance(op: Any, args: argparse.Namespace) -> dict[str, Any]:
    answer = {"mean": round(op.mean(), 3), "variance": round(op.query(), 3)}
    if args.eh:
        lo, hi = op.variance_bounds()
        answer["variance_bounds"] = (round(lo, 3), round(hi, 3))
    return answer


def _answer_drift(op: Any, args: argparse.Namespace) -> dict[str, Any]:
    drifts, warns, last_update = op.query()
    return {
        "drifts": drifts,
        "warns": warns,
        "last_drift_update": last_update,
        "drift_points": op.drift_points(),
    }


_COMMANDS: dict[str, _Command] = {
    "heavy-hitters": _Command(
        _resolve_heavy_hitters,
        lambda op, args: sorted(op.query().items(), key=lambda kv: -kv[1]),
    ),
    "frequency": _Command(
        _resolve_frequency,
        lambda op, args: [(item, op.estimate(item)) for item in args.query],
    ),
    "count": _Command(
        lambda args: (
            "ParallelBasicCounter", {"window": args.window, "eps": args.eps}
        ),
        lambda op, args: op.query(),
    ),
    "sum": _Command(
        lambda args: ("ParallelWindowedSum", {
            "window": args.window, "eps": args.eps, "max_value": args.max_value,
        }),
        lambda op, args: op.query(),
    ),
    "cms": _Command(
        lambda args: ("ParallelCountMin", {
            "eps": args.eps, "delta": args.delta,
            "conservative": args.conservative,
        }),
        lambda op, args: [(item, op.point_query(item)) for item in args.query],
    ),
    "quantile": _Command(
        lambda args: ("WindowedHistogram", _quantile_kwargs(args)),
        lambda op, args: [(q, op.quantile(q)) for q in args.q],
    ),
    "variance": _Command(
        lambda args: (
            "ExponentialHistogramVariance" if args.eh else "WindowedVariance",
            {
                "window": args.window, "eps": args.eps,
                "max_value": args.max_value,
            },
        ),
        _answer_variance,
    ),
    "drift": _Command(
        lambda args: (
            {"ddm": "DDMDriftDetector", "ewma": "EWMADriftDetector"}[
                args.detector
            ],
            {
                "window": args.window, "eps": args.eps,
                "max_value": args.max_value,
            },
        ),
        _answer_drift,
    ),
}


def _parse_rescale_at(spec: str) -> dict[int, int]:
    """Parse ``BATCH:SHARDS[,BATCH:SHARDS...]`` into a schedule dict."""
    schedule: dict[int, int] = {}
    for part in spec.split(","):
        try:
            batch_text, shards_text = part.split(":")
            batch, shards = int(batch_text), int(shards_text)
        except ValueError:
            raise ValueError(
                f"--rescale-at entry {part!r} is not BATCH:SHARDS"
            ) from None
        if batch < 0 or shards < 1:
            raise ValueError(
                f"--rescale-at entry {part!r} needs BATCH >= 0 and SHARDS >= 1"
            )
        schedule[batch] = shards
    return schedule


def _list_ops(out, verbose: bool = False) -> None:
    """``repro ops``: every registered synopsis with capability flags;
    ``--verbose`` adds the canonical query probe each operator answers
    ``repro serve`` QUERY requests with."""
    specs = sorted(registry.specs(), key=lambda s: (s.kind != "core", s.name))
    tail = (
        (lambda spec: f"{spec.summary}  |  probe: {spec.probe_source()}")
        if verbose
        else (lambda spec: spec.summary)
    )
    rows = [
        (spec.name, spec.kind, spec.input, spec.caps.flags(), tail(spec))
        for spec in specs
    ]
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    header = ("NAME", "KIND", "INPUT", "CAPS", "SUMMARY")
    widths = [max(w, len(h)) for w, h in zip(widths, header)]
    legend = (
        "caps: M=mergeable  P=preparable (shared-prework ingest)  "
        "W=windowed  I=invariant-checked"
    )
    print(legend, file=out)
    for row in (header, *rows):
        columns = "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        print(f"{columns}  {row[4]}", file=out)
    servable = sum(1 for spec in specs if spec.servable)
    print(
        f"{len(rows)} synopses registered, {servable} servable", file=out
    )


def _serve(args: argparse.Namespace, out) -> int:
    """``repro serve``: run the streaming server until SIGINT/SIGTERM
    (or ``--max-seconds``), then drain every tenant gracefully."""
    import asyncio
    import signal

    from repro.serve import PROTOCOL_VERSION, ServeConfig, StreamServer

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_tenants=args.max_tenants,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        queue_max=args.queue_max,
        high_watermark=args.high_watermark,
        batch_size=args.batch,
        shards=args.shards,
        checkpoint_dir=args.checkpoint_dir,
    )

    async def run() -> int:
        server = await StreamServer(config).start()
        host, port = server.address
        print(f"serving {PROTOCOL_VERSION} on {host}:{port}", file=out, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        waiters = [asyncio.ensure_future(stop.wait())]
        if args.max_seconds is not None:
            waiters.append(asyncio.ensure_future(asyncio.sleep(args.max_seconds)))
        try:
            await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for waiter in waiters:
                waiter.cancel()
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(sig)
        print("draining...", file=out, flush=True)
        reports = await server.drain()
        clean = True
        for report in reports:
            status = (
                "clean" if report.clean
                else f"{report.dead_letters} dead-lettered"
            )
            suffix = f", checkpoint {report.checkpoint}" if report.checkpoint else ""
            print(
                f"drained {report.tenant}: {report.items} items / "
                f"{report.batches} batches, epoch {report.epoch}, "
                f"{status}{suffix}",
                file=out,
            )
            clean = clean and report.clean
        print(f"drained {len(reports)} tenant(s)", file=out, flush=True)
        return 0 if clean else 1

    return asyncio.run(run())


def _client(args: argparse.Namespace, out) -> int:
    """``repro client``: attach a tenant, stream a file of integers in,
    then query and report."""
    import asyncio

    from repro.serve import LineClient

    ops = [name for name in args.ops.split(",") if name]
    if not ops:
        raise ValueError("--ops needs at least one operator name")
    skip_ingest = args.file is None and sys.stdin.isatty()

    async def run() -> int:
        client = await LineClient.connect(args.host, args.port)
        try:
            hello = await client.hello(args.tenant, ops)
            print(
                f"tenant {args.tenant} attached "
                f"(epoch {hello['epoch']}, ops {','.join(hello['ops'])})",
                file=out,
            )
            if not skip_ingest:
                total = 0
                for batch in _read_batches(args.file, args.batch):
                    reply = await client.ingest(batch)
                    total += reply["accepted"]
                print(f"ingested {total} items", file=out)
            for op_name in args.query or ops:
                answer = await client.query(op_name)
                print(
                    f"{op_name} @ epoch {answer['epoch']}: {answer['result']}",
                    file=out,
                )
            if args.stats:
                stats = await client.stats()
                print(f"stats: {stats}", file=out)
            await client.quit()
        finally:
            await client.close()
        return 0

    return asyncio.run(run())


def _run(args: argparse.Namespace, out) -> int | None:
    """Execute one subcommand; a non-None return becomes the exit code
    (the fuzzer signals violations with exit 1, distinct from usage
    errors at 2 and invariant violations at 3)."""
    if args.command == "fuzz":
        return _fuzz(args, out)
    if args.command == "profile":
        _profile(args, out)
        return None
    if args.command == "ops":
        _list_ops(out, verbose=args.verbose)
        return None
    if args.command == "serve":
        return _serve(args, out)
    if args.command == "client":
        return _client(args, out)
    command = _COMMANDS.get(args.command)
    if command is None:  # pragma: no cover - argparse enforces choices
        raise SystemExit(f"unknown command {args.command}")
    name, kwargs = command.resolve(args)
    op = registry.create(name, **kwargs)

    ingestor = None
    schedule: dict[int, int] = {}
    if args.shards is not None:
        if not (hasattr(op, "fresh_clone") and hasattr(op, "merge")):
            raise ValueError(
                f"--shards needs a mergeable operator (the M flag in "
                f"`repro ops`); {name} is not mergeable"
            )
        from repro.resilience.reshard import ElasticShardedIngestor

        schedule = _parse_rescale_at(args.rescale_at) if args.rescale_at else {}
        ingestor = ElasticShardedIngestor(op, shards=args.shards, label=name)
    elif args.rescale_at:
        raise ValueError("--rescale-at requires --shards")

    def synced() -> Any:
        # Queries, audits, and snapshots must see total state; folding
        # is a no-op when nothing is outstanding.
        if ingestor is not None:
            ingestor.sync()
        return op

    final = lambda: command.answer(synced(), args)  # noqa: E731
    interim = final

    manager = None
    items = 0
    batches_done = 0
    if args.checkpoint_dir:
        from repro.resilience import CheckpointManager

        manager = CheckpointManager(
            args.checkpoint_dir, every=max(1, args.checkpoint_every)
        )
        if args.resume:
            latest = manager.load_latest()
            if latest is not None:
                op.load_state(latest["state"]["op"])
                items = int(latest["state"]["items"])
                batches_done = int(latest["batch_index"])
                if hasattr(op, "check_invariants"):
                    op.check_invariants()
                print(
                    f"resumed from checkpoint at {items} items "
                    f"(batch {batches_done})",
                    file=out,
                )
    elif args.resume:
        raise ValueError("--resume requires --checkpoint-dir")

    def snapshot() -> dict:
        return {"op": synced().state_dict(), "items": items}

    for i, batch in enumerate(_read_batches(args.file, args.batch)):
        if ingestor is not None:
            target = schedule.get(i)
            if target is not None:
                ingestor.rescale(target, reason="scheduled", batch_index=i)
            ingestor.ingest(batch, batch_id=i)
        else:
            op.ingest(batch)
        items += len(batch)
        batches_done += 1
        _M_CLI_BATCHES.inc()
        _M_CLI_ITEMS.inc(int(len(batch)))
        if args.report_every and (i + 1) % args.report_every == 0:
            _M_CLI_REPORTS.inc()
            print(f"[{items} items] {interim()}", file=out)
        if args.audit_every and (i + 1) % args.audit_every == 0:
            if hasattr(op, "check_invariants"):
                synced().check_invariants()
        if manager is not None:
            manager.maybe_save(snapshot(), batches_done)

    if manager is not None and batches_done % manager.every != 0:
        manager.save(snapshot(), batch_index=batches_done)

    if ingestor is not None:
        synced()
        for event in ingestor.events:
            at = "?" if event.batch_index is None else event.batch_index
            print(
                f"reshard @ batch {at}: {event.old_shards} -> "
                f"{event.new_shards} shards ({event.reason}, "
                f"{event.seconds * 1e3:.2f} ms)",
                file=out,
            )
        print(f"final shards: {ingestor.shards}", file=out)

    print(f"items processed: {items}", file=out)
    print(f"answer: {final()}", file=out)


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.costs:
            with tracking() as ledger:
                code = _run(args, out)
            print(f"charged work: {ledger.work}  depth: {ledger.depth}", file=out)
        else:
            code = _run(args, out)
        if args.metrics:
            _dump_metrics(args.metrics, out)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 3
    return int(code) if code else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
