"""Deterministic fault injection, retry policy, and the dead-letter queue.

The fault model covers what a production ingest path actually sees
(cf. the recoverability concerns in Rinberg et al., *Fast Concurrent
Data Sketches*): duplicated deliveries, reordered deliveries, truncated
payloads, NaN-poisoned payloads, transient ingest exceptions, and hard
crashes mid-stream.

Determinism: the fault assigned to batch ``i`` is drawn from
``default_rng([seed, i])`` and memoized, so it depends only on
``(seed, i)`` — not on encounter order.  Replaying a stream after a
recovery sees the *same* duplications, truncations, and poisonings,
which is what makes the crash-recovery benchmark's bit-identical
comparison meaningful.  A crash fires at most once per batch id: the
replay of a batch whose first delivery crashed proceeds normally, the
way a restarted worker re-reads the record that killed it.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.observability.metrics import REGISTRY
from repro.resilience.state import STATE_VERSION, expect, header

__all__ = [
    "FAULT_KINDS",
    "SHARD_FAULT_KINDS",
    "Delivery",
    "DeadLetter",
    "DeadLetterQueue",
    "FaultInjector",
    "InjectedCrash",
    "PoisonBatchError",
    "RetryPolicy",
    "TransientIngestError",
    "validate_batch",
]

#: Every fault kind the injector can produce, in threshold order.
FAULT_KINDS = ("crash", "duplicate", "reorder", "truncate", "poison", "transient")

#: Shard-level fault kinds (target one shard task, not the delivery),
#: consumed by :class:`repro.resilience.reshard.ElasticShardedIngestor`.
SHARD_FAULT_KINDS = ("shard_crash", "shard_stall")

# Distinct key mixed into the RNG seed vector so the per-shard fault
# stream never collides with the per-batch stream for any batch id.
_SHARD_KEY = 0x5AD

# Fault-path metrics (catalog: docs/observability.md).
_M_FAULTS = REGISTRY.counter(
    "repro_faults_injected_total", "Faults injected into deliveries",
    labels=("kind",),
)
_M_DEAD_LETTERS = REGISTRY.counter(
    "repro_dead_letters_total", "Batches pushed to the dead-letter queue"
)
_M_DLQ_DEPTH = REGISTRY.gauge(
    "repro_dead_letter_queue_depth", "Entries currently held by the DLQ"
)


class InjectedCrash(RuntimeError):
    """A hard crash: the driver dies before processing the batch."""

    def __init__(self, batch_id: int) -> None:
        self.batch_id = int(batch_id)
        super().__init__(f"injected crash before batch {batch_id}")


class TransientIngestError(RuntimeError):
    """A retryable ingest failure (network blip, worker hiccup)."""


class PoisonBatchError(ValueError):
    """A batch whose payload can never be ingested (non-finite values)."""


@dataclass(frozen=True)
class Delivery:
    """One batch as delivered by the (possibly faulty) transport."""

    batch_id: int
    payload: np.ndarray
    fault: str | None = None


def validate_batch(payload: np.ndarray) -> None:
    """Reject payloads no retry can fix; raises :class:`PoisonBatchError`.

    Integer payloads are always valid; floating payloads must be finite.
    """
    arr = np.asarray(payload)
    if arr.dtype.kind == "f" and not np.isfinite(arr).all():
        bad = int(np.size(arr) - np.isfinite(arr).sum())
        raise PoisonBatchError(f"batch contains {bad} non-finite value(s)")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff.

    ``base_delay`` defaults to 0 so test/bench runs don't sleep; a real
    deployment sets it to its transport's retry floor.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.factor < 1:
            raise ValueError("need base_delay >= 0 and factor >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return self.base_delay * (self.factor**attempt)

    def backoff(self, attempt: int, sleep: Callable[[float], None] = time.sleep) -> float:
        d = self.delay(attempt)
        if d > 0:
            sleep(d)
        return d


@dataclass(frozen=True)
class DeadLetter:
    """One batch that exhausted its retries (or was poison on arrival)."""

    batch_id: int
    size: int
    reason: str
    attempts: int
    payload: np.ndarray = field(repr=False)


class DeadLetterQueue:
    """Bounded queue of undeliverable batches, with full accounting.

    When capacity is exceeded the *oldest* entry is evicted but stays
    accounted: ``dropped_batches``/``dropped_items`` count everything
    ever pushed, so no loss is silent even after eviction.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: deque[DeadLetter] = deque()
        self.evicted = 0
        self.dropped_batches = 0
        self.dropped_items = 0

    def push(
        self, batch_id: int, payload: np.ndarray, reason: str, attempts: int = 0
    ) -> DeadLetter:
        payload = np.asarray(payload)
        letter = DeadLetter(
            batch_id=int(batch_id),
            size=int(len(payload)),
            reason=str(reason),
            attempts=int(attempts),
            payload=payload,
        )
        self._entries.append(letter)
        self.dropped_batches += 1
        self.dropped_items += letter.size
        if len(self._entries) > self.capacity:
            self._entries.popleft()
            self.evicted += 1
        _M_DEAD_LETTERS.inc()
        _M_DLQ_DEPTH.set(len(self._entries))
        return letter

    def entries(self) -> list[DeadLetter]:
        return list(self._entries)

    def batch_ids(self) -> list[int]:
        return [e.batch_id for e in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        return {
            **header("dead_letter_queue"),
            "capacity": self.capacity,
            "evicted": self.evicted,
            "dropped_batches": self.dropped_batches,
            "dropped_items": self.dropped_items,
            "entries": [
                {
                    "batch_id": e.batch_id,
                    "size": e.size,
                    "reason": e.reason,
                    "attempts": e.attempts,
                    "payload": e.payload,
                }
                for e in self._entries
            ],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        expect(state, "dead_letter_queue")
        self.capacity = int(state["capacity"])
        self.evicted = int(state["evicted"])
        self.dropped_batches = int(state["dropped_batches"])
        self.dropped_items = int(state["dropped_items"])
        self._entries = deque(
            DeadLetter(
                batch_id=int(e["batch_id"]),
                size=int(e["size"]),
                reason=str(e["reason"]),
                attempts=int(e["attempts"]),
                payload=np.asarray(e["payload"]),
            )
            for e in state["entries"]
        )


class FaultInjector:
    """Seeded fault source for :class:`repro.stream.MinibatchDriver`.

    Parameters
    ----------
    seed:
        Root seed; together with a batch id it fully determines that
        batch's fault.
    crash, duplicate, reorder, truncate, poison, transient:
        Per-batch probabilities of each fault kind (mutually exclusive;
        their sum must be ≤ 1).
    transient_failures:
        How many consecutive ingest attempts fail for a batch hit by a
        ``transient`` fault (a retry policy with more attempts wins).
    crash_at:
        Additionally force a crash right before this batch id — the
        deterministic kill switch the recovery benchmark uses.
    shard_crash, shard_stall:
        Per-(batch, shard) probabilities of shard-task faults, drawn
        from an independent RNG stream keyed by ``(seed, batch, shard)``
        and consumed by the elastic sharded ingest supervisor — a
        ``shard_crash`` kills the shard task mid-ingest, a
        ``shard_stall`` makes it hang past its timeout.
    shard_fault_attempts:
        How many consecutive attempts of a faulted shard task fail
        before its replay succeeds (a retry policy with more attempts
        recovers; fewer degrades the shard).
    stall_seconds:
        How long a stalled shard task sleeps before returning.
    """

    def __init__(
        self,
        seed: int,
        *,
        crash: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        truncate: float = 0.0,
        poison: float = 0.0,
        transient: float = 0.0,
        transient_failures: int = 2,
        crash_at: int | None = None,
        shard_crash: float = 0.0,
        shard_stall: float = 0.0,
        shard_fault_attempts: int = 1,
        stall_seconds: float = 0.02,
    ) -> None:
        rates = {
            "crash": crash,
            "duplicate": duplicate,
            "reorder": reorder,
            "truncate": truncate,
            "poison": poison,
            "transient": transient,
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0 + 1e-12:
            raise ValueError("fault rates must sum to <= 1")
        if transient_failures < 1:
            raise ValueError("transient_failures must be >= 1")
        shard_rates = {"shard_crash": shard_crash, "shard_stall": shard_stall}
        for kind, rate in shard_rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1], got {rate}")
        if sum(shard_rates.values()) > 1.0 + 1e-12:
            raise ValueError("shard fault rates must sum to <= 1")
        if shard_fault_attempts < 1:
            raise ValueError("shard_fault_attempts must be >= 1")
        if stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")
        self.seed = int(seed)
        self.rates = rates
        self.shard_rates = shard_rates
        self.transient_failures = int(transient_failures)
        self.shard_fault_attempts = int(shard_fault_attempts)
        self.stall_seconds = float(stall_seconds)
        self.crash_at = crash_at if crash_at is None else int(crash_at)
        self._plan: dict[int, str | None] = {}
        self._shard_plan: dict[tuple[int, int], str | None] = {}
        self._crashed: set[int] = set()
        #: Count of faults actually emitted, by kind.
        self.injected: dict[str, int] = {
            kind: 0 for kind in FAULT_KINDS + SHARD_FAULT_KINDS
        }

    # ------------------------------------------------------------------
    def _batch_rng(self, batch_id: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, int(batch_id)])

    def fault_for(self, batch_id: int) -> str | None:
        """The (memoized) fault assigned to ``batch_id``."""
        if batch_id in self._plan:
            return self._plan[batch_id]
        if self.crash_at is not None and batch_id == self.crash_at:
            fault: str | None = "crash"
        else:
            u = float(self._batch_rng(batch_id).random())
            fault = None
            threshold = 0.0
            for kind in FAULT_KINDS:
                threshold += self.rates[kind]
                if u < threshold:
                    fault = kind
                    break
        self._plan[batch_id] = fault
        return fault

    def should_fail_transiently(self, batch_id: int, attempt: int) -> bool:
        """True when ingest attempt ``attempt`` (0-based) of this batch
        is planned to raise :class:`TransientIngestError`."""
        return self.fault_for(batch_id) == "transient" and attempt < self.transient_failures

    # ------------------------------------------------------------------
    def shard_fault_for(self, batch_id: int, shard: int) -> str | None:
        """The (memoized) shard-task fault assigned to ``(batch, shard)``.

        Drawn from ``default_rng([seed, _SHARD_KEY, batch, shard])`` so
        the decision depends only on the coordinates — replays and
        rescaled runs see the same plan for the same shard index."""
        key = (int(batch_id), int(shard))
        if key in self._shard_plan:
            return self._shard_plan[key]
        rng = np.random.default_rng([self.seed, _SHARD_KEY, key[0], key[1]])
        u = float(rng.random())
        fault: str | None = None
        threshold = 0.0
        for kind in SHARD_FAULT_KINDS:
            threshold += self.shard_rates[kind]
            if u < threshold:
                fault = kind
                break
        self._shard_plan[key] = fault
        return fault

    def shard_fault(self, batch_id: int, shard: int, attempt: int) -> str | None:
        """The fault attempt ``attempt`` (0-based) of this shard task
        should suffer, or ``None`` once replays are past the planned
        failure count.  Counts the fault on its first firing only, so
        ``injected`` tallies faulted *tasks*, not replays."""
        fault = self.shard_fault_for(batch_id, shard)
        if fault is None or attempt >= self.shard_fault_attempts:
            return None
        if attempt == 0:
            self.injected[fault] += 1
            _M_FAULTS.inc(kind=fault)
        return fault

    # ------------------------------------------------------------------
    def deliveries(
        self, batches: Iterable[tuple[int, np.ndarray]]
    ) -> Iterator[Delivery]:
        """Transform an ordered (batch_id, payload) sequence into the
        faulty delivery sequence the driver consumes."""
        held: Delivery | None = None
        for batch_id, payload in batches:
            fault = self.fault_for(batch_id)
            if fault == "crash":
                if batch_id not in self._crashed:
                    self._crashed.add(batch_id)
                    self.injected["crash"] += 1
                    _M_FAULTS.inc(kind="crash")
                    if held is not None:
                        yield held
                    yield Delivery(batch_id, payload, "crash")
                    continue
                fault = None  # replay after recovery proceeds normally

            if fault == "duplicate":
                self.injected["duplicate"] += 1
                _M_FAULTS.inc(kind="duplicate")
                delivery = Delivery(batch_id, payload, "duplicate")
                if held is not None:
                    yield held
                    held = None
                yield delivery
                yield delivery
                continue
            if fault == "reorder" and held is None:
                self.injected["reorder"] += 1
                _M_FAULTS.inc(kind="reorder")
                held = Delivery(batch_id, payload, "reorder")
                continue
            if fault == "truncate":
                self.injected["truncate"] += 1
                _M_FAULTS.inc(kind="truncate")
                keep = max(1, (len(payload) + 1) // 2)
                delivery = Delivery(batch_id, np.asarray(payload)[:keep], "truncate")
            elif fault == "poison":
                self.injected["poison"] += 1
                _M_FAULTS.inc(kind="poison")
                delivery = Delivery(batch_id, self._poisoned(batch_id, payload), "poison")
            elif fault == "transient":
                self.injected["transient"] += 1
                _M_FAULTS.inc(kind="transient")
                delivery = Delivery(batch_id, payload, "transient")
            else:
                delivery = Delivery(batch_id, payload, None)

            yield delivery
            if held is not None:
                yield held
                held = None
        if held is not None:
            yield held

    def _poisoned(self, batch_id: int, payload: np.ndarray) -> np.ndarray:
        """NaN-poison a few positions of the payload (float copy)."""
        out = np.asarray(payload, dtype=np.float64).copy()
        if out.size:
            rng = self._batch_rng(batch_id)
            rng.random()  # skip the fault-selection draw
            hits = rng.integers(0, out.size, size=max(1, out.size // 16))
            out[hits] = np.nan
        return out
