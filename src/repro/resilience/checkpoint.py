"""Atomic, checksummed checkpoints of driver + operator state.

Write path (crash-safe):

1. serialize the state via :mod:`repro.resilience.state` (canonical
   bytes, so equal states give equal files);
2. wrap it in an envelope carrying a SHA-256 checksum of the payload;
3. write to a temporary file *in the same directory*, flush + fsync,
   then ``os.replace`` onto the final name — a crash leaves either the
   old checkpoint or the new one, never a torn file.

Read path (fault-tolerant): ``load_latest`` walks checkpoints newest
to oldest, verifying the checksum of each; a corrupt file is skipped
(and remembered in ``corrupt_seen``) so recovery degrades to the most
recent *intact* checkpoint instead of failing outright.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Mapping

from repro.observability.metrics import REGISTRY
from repro.observability.spans import span
from repro.resilience import state as state_codec

__all__ = ["CheckpointCorruption", "CheckpointManager", "CHECKPOINT_FORMAT"]

#: Envelope format tag; bump with the envelope layout.
CHECKPOINT_FORMAT = "repro-checkpoint-v1"

# Checkpoint metrics (catalog: docs/observability.md).
_M_SAVES = REGISTRY.counter(
    "repro_checkpoint_saves_total", "Checkpoints successfully written"
)
_M_SAVE_SECONDS = REGISTRY.histogram(
    "repro_checkpoint_save_seconds", "Wall-clock seconds per checkpoint save"
)
_M_BYTES = REGISTRY.gauge(
    "repro_checkpoint_last_bytes", "Size of the most recent checkpoint file"
)
_M_LAST_INDEX = REGISTRY.gauge(
    "repro_checkpoint_last_batch_index", "Batch index of the most recent save"
)
_M_CORRUPT = REGISTRY.counter(
    "repro_checkpoint_corrupt_total", "Checkpoint files that failed validation"
)


class CheckpointCorruption(RuntimeError):
    """A checkpoint file failed its checksum or envelope validation."""


class CheckpointManager:
    """Snapshot state every ``every`` batches, keeping the last ``keep``.

    Parameters
    ----------
    directory:
        Where checkpoint files live (created on first save).
    every:
        Snapshot cadence in *processed* batches (K in docs/resilience.md).
    keep:
        How many most-recent checkpoints to retain; older ones are
        pruned after each successful save.
    """

    def __init__(self, directory: str | os.PathLike, *, every: int = 1, keep: int = 3) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.every = int(every)
        self.keep = int(keep)
        self.saves = 0
        self.corrupt_seen: list[Path] = []

    # ------------------------------------------------------------------
    def maybe_save(self, state: Mapping[str, Any], batch_index: int) -> Path | None:
        """Save iff ``batch_index`` (1-based count of processed batches)
        lands on the cadence; returns the path when a save happened."""
        if batch_index % self.every != 0:
            return None
        return self.save(state, batch_index)

    def save(self, state: Mapping[str, Any], batch_index: int) -> Path:
        """Atomically persist one checkpoint (write-then-rename)."""
        t0 = time.perf_counter()
        with span("checkpoint.save", "resilience"):
            payload = state_codec.dumps(state)
            envelope = {
                "format": CHECKPOINT_FORMAT,
                "batch_index": int(batch_index),
                "checksum": state_codec.checksum(payload),
                "payload": payload.decode("utf-8"),
            }
            blob = state_codec.dumps(envelope)
            self.directory.mkdir(parents=True, exist_ok=True)
            final = self._path_for(batch_index)
            tmp = final.with_name(final.name + ".tmp")
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, blob)
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, final)
            self.saves += 1
            self._prune()
        _M_SAVES.inc()
        _M_SAVE_SECONDS.observe(time.perf_counter() - t0)
        _M_BYTES.set(len(blob))
        _M_LAST_INDEX.set(int(batch_index))
        return final

    # ------------------------------------------------------------------
    def load(self, path: str | os.PathLike) -> dict[str, Any]:
        """Load and verify one checkpoint file.

        Every failure mode — unreadable bytes, a foreign or truncated
        envelope, a bit-flipped payload, a manifest missing its version
        header — surfaces as :class:`CheckpointCorruption`, never as a
        raw codec/KeyError, so recovery's skip-and-degrade logic catches
        exactly one exception type."""
        raw = Path(path).read_bytes()
        try:
            envelope = state_codec.loads(raw)
        except state_codec.StateError as exc:
            raise CheckpointCorruption(f"{path}: unreadable envelope ({exc})") from exc
        if not isinstance(envelope, dict) or envelope.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointCorruption(f"{path}: not a {CHECKPOINT_FORMAT} file")
        missing = [
            key
            for key in ("batch_index", "checksum", "payload")
            if key not in envelope
        ]
        if missing:
            raise CheckpointCorruption(
                f"{path}: envelope missing field(s) {missing}"
            )
        payload = str(envelope["payload"]).encode("utf-8")
        if state_codec.checksum(payload) != envelope["checksum"]:
            raise CheckpointCorruption(f"{path}: checksum mismatch")
        try:
            batch_index = int(envelope["batch_index"])
        except (TypeError, ValueError) as exc:
            raise CheckpointCorruption(
                f"{path}: non-integer batch_index {envelope['batch_index']!r}"
            ) from exc
        try:
            state = state_codec.loads(payload)
        except state_codec.StateError as exc:
            raise CheckpointCorruption(f"{path}: undecodable payload ({exc})") from exc
        if isinstance(state, dict) and "kind" in state and "version" not in state:
            # A versionless manifest checksums fine but cannot be safely
            # interpreted — the codec's compatibility gate needs it.
            raise CheckpointCorruption(
                f"{path}: state manifest for kind {state['kind']!r} has no version"
            )
        return {"batch_index": batch_index, "state": state}

    def load_latest(self, *, strict: bool = False) -> dict[str, Any] | None:
        """The newest intact checkpoint, or ``None`` if there is none.

        With ``strict=False`` (the default recovery mode) corrupt files
        are skipped and recorded; ``strict=True`` raises on the first
        corrupt file encountered.
        """
        for path in reversed(self.paths()):
            try:
                return self.load(path)
            except CheckpointCorruption:
                _M_CORRUPT.inc()
                if strict:
                    raise
                self.corrupt_seen.append(path)
        return None

    def paths(self) -> list[Path]:
        """All checkpoint files, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("ckpt-*.json"))

    # ------------------------------------------------------------------
    def _path_for(self, batch_index: int) -> Path:
        return self.directory / f"ckpt-{batch_index:010d}.json"

    def _prune(self) -> None:
        for stale in self.paths()[: -self.keep]:
            stale.unlink(missing_ok=True)
