"""Invariant auditing: structural self-checks for every synopsis.

Each core structure implements ``check_invariants()``, raising
:class:`InvariantViolation` when its internal state can no longer back
the guarantee it advertises — e.g. a Misra-Gries summary holding more
than S counters, a Count-Min row whose sum disagrees with the ingested
weight, or an SBBC whose block ids stopped increasing.

The checks are *sound* for healthy structures (every state reachable
through the public API passes; tested) and are cheap enough to run
after every recovery and, optionally, after every batch — the
``audit_every`` knob on :class:`repro.stream.MinibatchDriver`.  A
failed audit is the signal for graceful degradation: quarantine the
report and re-initialize from the last good checkpoint.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["InvariantViolation", "require", "audit_operators"]


class InvariantViolation(Exception):
    """A structure's internal state contradicts its own guarantees.

    Attributes
    ----------
    structure:
        Name of the violated structure (class name or operator name).
    detail:
        Human-readable description of the broken invariant.
    """

    def __init__(self, structure: str, detail: str) -> None:
        self.structure = structure
        self.detail = detail
        super().__init__(f"{structure}: {detail}")


def require(condition: bool, structure: str, detail: str) -> None:
    """Raise :class:`InvariantViolation` unless ``condition`` holds."""
    if not condition:
        raise InvariantViolation(structure, detail)


def audit_operators(operators: Mapping[str, Any]) -> list[str]:
    """Run ``check_invariants`` on every operator that provides it.

    Returns the names of the operators audited; raises on the first
    violation (annotated with the operator's registered name).
    """
    audited: list[str] = []
    for name, op in operators.items():
        check = getattr(op, "check_invariants", None)
        if check is None:
            continue
        try:
            check()
        except InvariantViolation as exc:
            raise InvariantViolation(name, str(exc)) from exc
        audited.append(name)
    return audited
