"""Fault-tolerant streaming runtime: checkpoint/restore, fault
injection, and invariant-guarded recovery (docs/resilience.md).

The layer sits between the minibatch driver and the synopsis
structures: operator state is serialized deterministically, snapshotted
atomically every K batches, and on failure the driver rolls back to the
newest *intact* checkpoint, re-validating the paper's structural
invariants (DESIGN.md's substitution rule applies — recovery must not
change any work/depth or accuracy guarantee, only availability).

``repro.resilience.state``       versioned deterministic serialization
``repro.resilience.checkpoint``  atomic write-then-rename snapshots
``repro.resilience.faults``      seeded fault injector, retries, DLQ
``repro.resilience.invariants``  per-sketch structural audits
``repro.resilience.reshard``     elastic sharded ingest + supervision

Checkpoint saves are traced as ``checkpoint.save`` spans, and the save
/ corruption / fault / dead-letter paths feed the process metrics
registry (``repro_checkpoint_*``, ``repro_faults_injected_total``,
``repro_dead_letter*`` — catalog in docs/observability.md).
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointCorruption,
    CheckpointManager,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    SHARD_FAULT_KINDS,
    DeadLetter,
    DeadLetterQueue,
    Delivery,
    FaultInjector,
    InjectedCrash,
    PoisonBatchError,
    RetryPolicy,
    TransientIngestError,
    validate_batch,
)
from repro.resilience.invariants import InvariantViolation, audit_operators, require
from repro.resilience.reshard import (
    ElasticShardedIngestor,
    ReshardEvent,
    ShardCrashError,
    ShardFailure,
    ShardStallError,
)
from repro.resilience.state import (
    STATE_VERSION,
    StateError,
    checksum,
    decode,
    dumps,
    encode,
    expect,
    header,
    loads,
    restore_rng,
    rng_state,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointCorruption",
    "CheckpointManager",
    "FAULT_KINDS",
    "SHARD_FAULT_KINDS",
    "DeadLetter",
    "DeadLetterQueue",
    "Delivery",
    "FaultInjector",
    "InjectedCrash",
    "PoisonBatchError",
    "RetryPolicy",
    "TransientIngestError",
    "validate_batch",
    "InvariantViolation",
    "audit_operators",
    "require",
    "ElasticShardedIngestor",
    "ReshardEvent",
    "ShardCrashError",
    "ShardFailure",
    "ShardStallError",
    "STATE_VERSION",
    "StateError",
    "checksum",
    "decode",
    "dumps",
    "encode",
    "expect",
    "header",
    "loads",
    "restore_rng",
    "rng_state",
]
