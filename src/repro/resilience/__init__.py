"""Fault-tolerant streaming runtime: checkpoint/restore, fault
injection, and invariant-guarded recovery (docs/resilience.md).

``repro.resilience.state``       versioned deterministic serialization
``repro.resilience.checkpoint``  atomic write-then-rename snapshots
``repro.resilience.faults``      seeded fault injector, retries, DLQ
``repro.resilience.invariants``  per-sketch structural audits
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointCorruption,
    CheckpointManager,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    DeadLetter,
    DeadLetterQueue,
    Delivery,
    FaultInjector,
    InjectedCrash,
    PoisonBatchError,
    RetryPolicy,
    TransientIngestError,
    validate_batch,
)
from repro.resilience.invariants import InvariantViolation, audit_operators, require
from repro.resilience.state import (
    STATE_VERSION,
    StateError,
    checksum,
    decode,
    dumps,
    encode,
    expect,
    header,
    loads,
    restore_rng,
    rng_state,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointCorruption",
    "CheckpointManager",
    "FAULT_KINDS",
    "DeadLetter",
    "DeadLetterQueue",
    "Delivery",
    "FaultInjector",
    "InjectedCrash",
    "PoisonBatchError",
    "RetryPolicy",
    "TransientIngestError",
    "validate_batch",
    "InvariantViolation",
    "audit_operators",
    "require",
    "STATE_VERSION",
    "StateError",
    "checksum",
    "decode",
    "dumps",
    "encode",
    "expect",
    "header",
    "loads",
    "restore_rng",
    "rng_state",
]
