"""Elastic resharding with live state migration and shard supervision.

PR 3's ``shard_ingest`` made ingest parallel; PR 4's merge algebra made
the shard count a *mathematical* free variable (merge-order freedom);
this module makes it an *operational* one: a supervised, fault-tolerant,
runtime quantity.  :class:`ElasticShardedIngestor` owns a base synopsis
plus one long-lived partial synopsis per shard, so that at any instant

    total state  =  base  ⊕  partial_0 ⊕ … ⊕ partial_{S−1}

(⊕ = ``merge``).  Every protocol step below is just a re-association of
that expression, which mergeable summaries license unconditionally
([ACH+13]; the QPOPSS partitioning and Gulisano et al.'s live multiway
aggregation in PAPERS.md motivate doing it *without* stopping ingest).

**Rescale protocol** (``rescale(S_new)``): coordinated checkpoint of the
current partials → k-ary re-fold through
:func:`repro.engine.mergetree.refold_partials` (O(log_k S) depth, same
tree used for the per-batch fold) → ``base.merge(folded)`` → repartition
into ``S_new`` fresh clones → resume.  State-equivalent to never having
rescaled; the ``reshard`` differential relation in ``repro.fuzz``
audits exactly this against a fixed-shard run for every mergeable
operator.

**Shard supervision**: when a :class:`~repro.resilience.faults.FaultInjector`
or a timeout is attached, each shard task runs against a *pickled blob*
of its partial — the blob is the shard's per-batch checkpoint.  A task
that crashes (``shard_crash``), hangs past its timeout (``shard_stall``),
or dies with its worker (``WorkerCrashError``) loses only its private
copy: the supervisor replays the same blob + slice under the
:class:`~repro.resilience.faults.RetryPolicy`.  A shard that exhausts
its retries is *degraded*, never aborted: its slice is re-ingested
unsharded into the base (zero data loss), its last-good partial folds
into the base, the shard retires (down to ``min_shards``), and the
event is recorded as a metric + an accounting-only dead-letter record.

Stall detection is post-hoc — the task measures its own elapsed time
and the supervisor compares it to ``timeout`` after the join — so it
works identically on Serial / Thread / Process backends; it models the
"answer arrived too late to use" failure rather than preemption.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from repro.engine.mergetree import refold_partials
from repro.observability.metrics import REGISTRY
from repro.observability.spans import span
from repro.pram.backend import Backend, WorkerCrashError, fork_join
from repro.resilience.faults import (
    DeadLetterQueue,
    FaultInjector,
    RetryPolicy,
)
from repro.resilience.state import expect, header

__all__ = [
    "ElasticShardedIngestor",
    "ReshardEvent",
    "ShardCrashError",
    "ShardFailure",
    "ShardStallError",
]

# Reshard metrics (catalog: docs/observability.md).  The failures
# counter is the same family ProcessPoolBackend records "worker_lost"
# into — get-or-create registration returns the shared instance.
_M_RESHARDS = REGISTRY.counter(
    "repro_reshards_total",
    "Completed shard-count transitions",
    labels=("reason",),
)
_M_RESHARD_SECONDS = REGISTRY.histogram(
    "repro_reshard_seconds", "Wall-clock latency of rescale transitions"
)
_M_SHARDS_CURRENT = REGISTRY.gauge(
    "repro_shards_current", "Current shard count of elastic ingestors"
)
_M_SHARD_FAILURES = REGISTRY.counter(
    "repro_shard_failures_total",
    "Shard/worker task failures seen by backends and shard supervision",
    labels=("kind",),
)


class ShardCrashError(RuntimeError):
    """Injected hard crash inside a shard task (half-ingested state is
    discarded with the task's private clone)."""


class ShardStallError(RuntimeError):
    """A shard task's result arrived after its timeout and was voided."""


@dataclass(frozen=True)
class ReshardEvent:
    """One completed shard-count transition."""

    batch_index: int | None
    old_shards: int
    new_shards: int
    seconds: float
    reason: str  # "requested" | "degraded"
    folded: int  # partials folded into the base during the transition


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard-task attempt, and what the supervisor did."""

    batch_index: int
    shard: int
    kind: str  # "shard_crash" | "shard_stall" | "worker_lost" | "error"
    attempt: int
    action: str  # "replay" | "degrade"
    detail: str


def _shard_task_fast(op: Any, shard: np.ndarray) -> Any:
    """Unsupervised strand: ingest the slice into the partial and return
    it (module-level so it pickles into a process worker, where the
    returned object — not the argument — carries the new state)."""
    op.ingest(shard)
    return op


def _shard_task(
    blob: bytes,
    shard: np.ndarray,
    injected_fault: str | None,
    stall_seconds: float,
) -> dict[str, Any]:
    """Supervised strand: replay-safe ingest of one slice against a
    pickled partial checkpoint.

    Never raises — crashes (injected or real) are reported in-band so
    the supervisor can tell *which* shard failed even on backends whose
    exceptions lose task identity.  The measured ``elapsed`` is what
    post-hoc stall detection compares against the timeout."""
    start = time.perf_counter()
    try:
        op = pickle.loads(blob)
        if injected_fault == "shard_stall" and stall_seconds > 0:
            time.sleep(stall_seconds)
        if injected_fault == "shard_crash":
            # Die mid-slice: half the items are ingested into the
            # private copy, then the task keels over.  The supervisor
            # discards this attempt wholesale — the blob still holds the
            # pre-batch state, so the replay double-counts nothing.
            half = max(1, len(shard) // 2)
            op.ingest(np.asarray(shard)[:half])
            raise ShardCrashError("injected shard crash mid-ingest")
        op.ingest(shard)
    except Exception as exc:  # noqa: BLE001 — report in-band, see docstring
        kind = "shard_crash" if isinstance(exc, ShardCrashError) else "error"
        return {
            "ok": False,
            "kind": kind,
            "detail": f"{type(exc).__name__}: {exc}",
            "elapsed": time.perf_counter() - start,
        }
    return {"ok": True, "op": op, "elapsed": time.perf_counter() - start}


class ElasticShardedIngestor:
    """Sharded ingest whose shard count is a supervised runtime quantity.

    Parameters
    ----------
    op:
        A mergeable synopsis (``fresh_clone`` + ``merge``); it becomes
        the *base* that owns all folded state.  Queries against ``op``
        are only total after :meth:`sync`.
    shards:
        Initial shard count (>= 1).
    backend / arity:
        Execution backend for the fork-join regions and fold arity for
        the k-ary re-fold (both per-batch and rescale folds).
    retry:
        :class:`RetryPolicy` bounding shard-task replays; defaults to
        ``RetryPolicy()`` (3 attempts).
    timeout:
        Post-hoc stall threshold in seconds; ``None`` disables stall
        detection.  Setting it (or ``injector``) switches ingest to the
        supervised checkpoint-blob path.
    injector:
        Optional :class:`FaultInjector` supplying seeded
        ``shard_crash`` / ``shard_stall`` plans.
    dead_letter:
        DLQ receiving accounting-only records of degraded shards
        (payload is empty — the data was re-ingested, not dropped).
        Created lazily on first degrade when omitted.
    min_shards:
        Degradation floor: the shard count never drops below this.
    """

    def __init__(
        self,
        op: Any,
        *,
        shards: int,
        backend: Backend | None = None,
        arity: int = 2,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
        injector: FaultInjector | None = None,
        dead_letter: DeadLetterQueue | None = None,
        min_shards: int = 1,
        label: str | None = None,
    ) -> None:
        for required in ("fresh_clone", "merge"):
            if not hasattr(op, required):
                raise TypeError(
                    f"{type(op).__name__} has no {required}(); elastic sharded "
                    "ingest needs a mergeable synopsis (fresh_clone + merge)"
                )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if min_shards < 1 or min_shards > shards:
            raise ValueError(
                f"need 1 <= min_shards <= shards, got {min_shards}/{shards}"
            )
        if arity < 2:
            raise ValueError(f"arity must be >= 2, got {arity}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.op = op
        self.backend = backend
        self.arity = int(arity)
        self.retry = retry or RetryPolicy()
        self.timeout = timeout
        self.injector = injector
        self.dead_letter = dead_letter
        self.min_shards = int(min_shards)
        self.label = label or type(op).__name__
        self._partials: list[Any] = [op.fresh_clone() for _ in range(shards)]
        self._dirty = False
        self.batches = 0
        self.degraded_slices = 0
        #: Completed transitions / failed attempts, in order; drained by
        #: the driver's reshard hooks (cursor-based, never cleared here).
        self.events: list[ReshardEvent] = []
        self.failures: list[ShardFailure] = []
        _M_SHARDS_CURRENT.set(len(self._partials))

    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self._partials)

    @property
    def supervised(self) -> bool:
        """Whether ingest runs on the checkpoint-blob replay path."""
        return self.injector is not None or self.timeout is not None

    # ------------------------------------------------------------------
    def ingest(self, batch: np.ndarray, *, batch_id: int | None = None) -> None:
        """Shard ``batch`` across the current partials (one fork-join
        region) under supervision when enabled."""
        batch = np.asarray(batch)
        bid = self.batches if batch_id is None else int(batch_id)
        self.batches += 1
        if batch.size == 0:  # degenerate: nothing to shard, no strands
            return
        # Slices stay aligned to shard indices; S > len(batch) leaves
        # trailing slices empty and those shards idle this batch.
        slices = np.array_split(batch, len(self._partials))
        active = [i for i, part in enumerate(slices) if part.size]
        if not active:
            return
        self._dirty = True
        if not self.supervised:
            tasks = []
            for i in active:
                task = partial(_shard_task_fast, self._partials[i], slices[i])
                task.label = f"{self.label}:b{bid}:s{i}"
                tasks.append(task)
            results = fork_join(tasks, self.backend)
            for i, result in zip(active, results):
                self._partials[i] = result
            return
        self._ingest_supervised(bid, slices, active)

    def _ingest_supervised(
        self, bid: int, slices: list[np.ndarray], active: list[int]
    ) -> None:
        """Checkpoint-blob path: each active shard's partial is pickled
        once per batch; every attempt (first try and replays alike) runs
        against that blob, so a failed attempt loses nothing."""
        blobs = {i: pickle.dumps(self._partials[i]) for i in active}
        pending = list(active)
        attempt = 0
        while pending and attempt < self.retry.max_attempts:
            tasks = []
            for i in pending:
                fault = (
                    self.injector.shard_fault(bid, i, attempt)
                    if self.injector is not None
                    else None
                )
                stall = self.injector.stall_seconds if self.injector else 0.0
                task = partial(_shard_task, blobs[i], slices[i], fault, stall)
                task.label = f"{self.label}:b{bid}:s{i}"
                tasks.append(task)
            try:
                outs = fork_join(tasks, self.backend)
            except WorkerCrashError as exc:
                # The pool is gone and per-task outcomes with it: every
                # pending shard counts as lost and replays from its blob.
                # (run_all already bumped the worker_lost counter.)
                for i in pending:
                    self._record_failure(bid, i, "worker_lost", attempt, str(exc))
                attempt += 1
                self.retry.backoff(attempt - 1)
                continue
            still_pending: list[int] = []
            for i, out in zip(pending, outs):
                if out["ok"] and (
                    self.timeout is None or out["elapsed"] <= self.timeout
                ):
                    self._partials[i] = out["op"]
                    continue
                if out["ok"]:
                    kind = "shard_stall"
                    detail = (
                        f"result after {out['elapsed']:.4f}s > "
                        f"timeout {self.timeout:.4f}s; voided"
                    )
                else:
                    kind, detail = out["kind"], out["detail"]
                _M_SHARD_FAILURES.inc(kind=kind)
                self._record_failure(bid, i, kind, attempt, detail)
                still_pending.append(i)
            pending = still_pending
            attempt += 1
            if pending and attempt < self.retry.max_attempts:
                self.retry.backoff(attempt - 1)
        if pending:
            self._degrade(bid, slices, pending, attempt)

    def _record_failure(
        self, bid: int, shard: int, kind: str, attempt: int, detail: str
    ) -> None:
        action = "replay" if attempt + 1 < self.retry.max_attempts else "degrade"
        self.failures.append(
            ShardFailure(
                batch_index=bid,
                shard=shard,
                kind=kind,
                attempt=attempt,
                action=action,
                detail=detail,
            )
        )

    def _degrade(
        self, bid: int, slices: list[np.ndarray], failed: list[int], attempts: int
    ) -> None:
        """Retries exhausted: absorb each failed shard instead of
        aborting the batch.  The slice is re-ingested unsharded into the
        base (zero data loss — only the parallelism is lost), the
        shard's last-good partial folds into the base, and the shard
        retires down to ``min_shards``."""
        start = time.perf_counter()
        old = len(self._partials)
        if self.dead_letter is None:
            self.dead_letter = DeadLetterQueue()
        # Descending index order so retirements never shift a pending
        # index out from under us.
        for i in sorted(failed, reverse=True):
            self.op.ingest(slices[i])
            self.degraded_slices += 1
            last_kind = next(
                (f.kind for f in reversed(self.failures) if f.shard == i), "?"
            )
            if len(self._partials) > self.min_shards:
                self.op.merge(self._partials[i])
                del self._partials[i]
                note = "shard retired"
            else:
                note = f"at min_shards={self.min_shards}, shard kept"
            # Accounting-only record: payload is empty because the slice
            # was re-ingested above, not dropped.
            self.dead_letter.push(
                bid,
                np.empty(0, dtype=np.int64),
                reason=(
                    f"shard {i} degraded after {attempts} attempt(s) "
                    f"({last_kind}); slice of {len(slices[i])} item(s) "
                    f"re-ingested unsharded; {note}"
                ),
                attempts=attempts,
            )
        seconds = time.perf_counter() - start
        self.events.append(
            ReshardEvent(
                batch_index=bid,
                old_shards=old,
                new_shards=len(self._partials),
                seconds=seconds,
                reason="degraded",
                folded=old - len(self._partials),
            )
        )
        _M_RESHARDS.inc(reason="degraded")
        _M_RESHARD_SECONDS.observe(seconds)
        _M_SHARDS_CURRENT.set(len(self._partials))

    # ------------------------------------------------------------------
    def rescale(
        self,
        new_shards: int,
        *,
        reason: str = "requested",
        batch_index: int | None = None,
    ) -> ReshardEvent | None:
        """Transition to ``new_shards``: checkpoint → k-ary re-fold →
        repartition → resume.

        The current partials fold into the base through
        :func:`refold_partials` (the coordinated checkpoint is the
        folded base itself — after this line the whole state lives in
        one synopsis), then ``new_shards`` fresh clones take over.
        No-op when the count is unchanged.  Returns the recorded
        :class:`ReshardEvent`, or ``None`` for the no-op."""
        if new_shards < 1:
            raise ValueError(f"new_shards must be >= 1, got {new_shards}")
        new_shards = int(new_shards)
        if new_shards == len(self._partials):
            return None
        with span("reshard.rescale", "resilience"):
            start = time.perf_counter()
            old = len(self._partials)
            folded = self._fold()
            self.min_shards = min(self.min_shards, new_shards)
            self._partials = [self.op.fresh_clone() for _ in range(new_shards)]
            seconds = time.perf_counter() - start
        event = ReshardEvent(
            batch_index=batch_index,
            old_shards=old,
            new_shards=new_shards,
            seconds=seconds,
            reason=reason,
            folded=folded,
        )
        self.events.append(event)
        _M_RESHARDS.inc(reason=reason)
        _M_RESHARD_SECONDS.observe(seconds)
        _M_SHARDS_CURRENT.set(new_shards)
        return event

    def _fold(self) -> int:
        """Fold every dirty partial into the base; returns how many
        partials carried state into the fold."""
        if not self._dirty:
            return 0
        head = refold_partials(self._partials, arity=self.arity, backend=self.backend)
        if head is not None:
            self.op.merge(head)
        folded = len(self._partials)
        self._partials = [self.op.fresh_clone() for _ in range(folded)]
        self._dirty = False
        return folded

    def sync(self) -> Any:
        """Fold outstanding partial state into the base so queries see
        the total; the shard count is unchanged.  Returns the base."""
        self._fold()
        return self.op

    def collect(self) -> Any:
        """Alias of :meth:`sync` for query-site readability."""
        return self.sync()

    def discard_partials(self) -> None:
        """Drop unfolded per-shard state *without* folding it — rollback
        support for drivers that restore the base from a pre-attempt
        snapshot and must not let a half-applied batch's partials leak
        back in."""
        self._partials = [
            self.op.fresh_clone() for _ in range(len(self._partials))
        ]
        self._dirty = False

    def set_shards(self, shards: int) -> None:
        """Restore-time repartition: install ``shards`` fresh partials
        *without* folding — the base is assumed to already hold the
        total state (as after :meth:`load_state`)."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if self._dirty:
            self._fold()
        self._partials = [self.op.fresh_clone() for _ in range(int(shards))]
        self.min_shards = min(self.min_shards, int(shards))
        _M_SHARDS_CURRENT.set(int(shards))

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Serializable snapshot: the synced base plus shard topology.

        Partials are always folded first, so the snapshot never needs to
        carry per-shard state — restore repartitions fresh."""
        self.sync()
        if not hasattr(self.op, "state_dict"):
            raise TypeError(
                f"{type(self.op).__name__} has no state_dict(); cannot "
                "checkpoint an elastic ingestor over it"
            )
        return {
            **header("elastic_sharded_ingestor"),
            "shards": len(self._partials),
            "min_shards": self.min_shards,
            "batches": self.batches,
            "degraded_slices": self.degraded_slices,
            "op": self.op.state_dict(),
        }

    def load_state(self, state: dict[str, Any]) -> None:
        expect(state, "elastic_sharded_ingestor")
        self.op.load_state(state["op"])
        self.batches = int(state["batches"])
        self.degraded_slices = int(state["degraded_slices"])
        self.min_shards = int(state["min_shards"])
        self._dirty = False
        self._partials = [
            self.op.fresh_clone() for _ in range(int(state["shards"]))
        ]
        _M_SHARDS_CURRENT.set(len(self._partials))
