"""Versioned, deterministic state serialization for every synopsis.

Checkpoint/restore (docs/resilience.md) rests on three properties this
module provides:

* **completeness** — ``encode``/``decode`` round-trip every value a
  synopsis holds: NumPy arrays (dtype + shape preserved bit-exactly via
  base64 of the raw buffer), NumPy scalars, tuples, non-string dict
  keys (sketch counter maps are keyed by stream items), and the
  non-finite floats JSON rejects (``SBBC.sigma`` is ``inf``);
* **determinism** — ``dumps`` emits canonical JSON (sorted keys, fixed
  separators, ``__map__`` association lists sorted by encoded key), so
  identical states serialize to identical bytes — *including* counter
  maps built in different insertion orders — and a checkpoint's
  checksum is reproducible;
* **versioning** — every ``state_dict()`` carries a ``kind`` tag and a
  format ``version``; ``expect`` rejects mismatched kinds and states
  written by a *newer* format, turning silent misloads into
  :class:`StateError`.

RNG state travels too (``rng_state``/``restore_rng``): ``buildHist``
draws a fresh hash per minibatch, so bit-identical continuation after a
restore requires resuming the generator mid-sequence.
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
from typing import Any, Mapping

import numpy as np

__all__ = [
    "STATE_VERSION",
    "StateError",
    "encode",
    "decode",
    "dumps",
    "loads",
    "checksum",
    "header",
    "expect",
    "rng_state",
    "restore_rng",
]

#: Format version stamped into every ``state_dict()``.  Bump when a
#: synopsis's serialized layout changes incompatibly.
STATE_VERSION = 1

_FLOAT_SPECIALS = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


class StateError(ValueError):
    """A state blob is malformed, of the wrong kind, or too new."""


def encode(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-safe plain data."""
    if obj is None or isinstance(obj, (bool, str, int)):
        return obj
    if isinstance(obj, float):
        if math.isfinite(obj):
            return obj
        if math.isnan(obj):
            return {"__float__": "nan"}
        return {"__float__": "inf" if obj > 0 else "-inf"}
    if isinstance(obj, np.generic):
        return encode(obj.item())
    if isinstance(obj, np.ndarray):
        return {
            "__nd__": {
                "dtype": obj.dtype.str,
                "shape": list(obj.shape),
                "data": base64.b64encode(np.ascontiguousarray(obj).tobytes()).decode(
                    "ascii"
                ),
            }
        }
    if isinstance(obj, tuple):
        return {"__tuple__": [encode(x) for x in obj]}
    if isinstance(obj, (list,)):
        return [encode(x) for x in obj]
    if isinstance(obj, Mapping):
        if all(isinstance(k, str) and not k.startswith("__") for k in obj):
            return {k: encode(v) for k, v in obj.items()}
        # Non-string (or reserved) keys: keep as an association list so
        # integer-keyed counter maps survive JSON.  Pairs are sorted by
        # the canonical JSON of the encoded key: counter maps reach the
        # same contents in different insertion orders (vectorized kernel
        # vs per-item loop, merge-tree vs flat fold), and a canonical
        # encoding must not leak that order into the checkpoint bytes.
        pairs = [[encode(k), encode(v)] for k, v in obj.items()]
        pairs.sort(key=lambda kv: _canonical_key(kv[0]))
        return {"__map__": pairs}
    raise StateError(f"cannot serialize {type(obj).__name__}: {obj!r}")


def decode(obj: Any) -> Any:
    """Inverse of :func:`encode`."""
    if isinstance(obj, list):
        return [decode(x) for x in obj]
    if isinstance(obj, dict):
        if "__float__" in obj:
            return _FLOAT_SPECIALS[obj["__float__"]]
        if "__nd__" in obj:
            spec = obj["__nd__"]
            raw = base64.b64decode(spec["data"])
            arr = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
            return arr.reshape(spec["shape"]).copy()
        if "__tuple__" in obj:
            return tuple(decode(x) for x in obj["__tuple__"])
        if "__map__" in obj:
            return {_freeze(decode(k)): decode(v) for k, v in obj["__map__"]}
        return {k: decode(v) for k, v in obj.items()}
    return obj


def _freeze(key: Any) -> Any:
    """Dict keys must be hashable; lists decoded from JSON become tuples."""
    return tuple(key) if isinstance(key, list) else key


def _canonical_key(encoded_key: Any) -> str:
    """Total order over encoded ``__map__`` keys: their canonical JSON."""
    return json.dumps(
        encoded_key, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def dumps(state: Any) -> bytes:
    """Canonical bytes: identical states yield identical output."""
    return json.dumps(
        encode(state), sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def loads(data: bytes | str) -> Any:
    if isinstance(data, bytes):
        data = data.decode("utf-8")
    try:
        return decode(json.loads(data))
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise StateError(f"malformed state blob: {exc}") from exc


def checksum(data: bytes) -> str:
    """SHA-256 hex digest used to detect torn/corrupt checkpoints."""
    return hashlib.sha256(data).hexdigest()


def header(kind: str) -> dict[str, Any]:
    """The (kind, version) preamble every ``state_dict()`` starts with."""
    return {"kind": kind, "version": STATE_VERSION}


def expect(state: Any, kind: str) -> Mapping[str, Any]:
    """Validate a state blob's kind/version before loading it."""
    if not isinstance(state, Mapping):
        raise StateError(f"expected a {kind!r} state mapping, got {type(state).__name__}")
    got = state.get("kind")
    if got != kind:
        raise StateError(f"state kind mismatch: expected {kind!r}, got {got!r}")
    version = state.get("version")
    if not isinstance(version, int) or version < 1:
        raise StateError(f"bad state version for {kind!r}: {version!r}")
    if version > STATE_VERSION:
        raise StateError(
            f"state of kind {kind!r} was written by a newer format "
            f"(version {version} > supported {STATE_VERSION})"
        )
    return state


def rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """Capture a generator's full bit-generator state (JSON-safe)."""
    return dict(rng.bit_generator.state)


def restore_rng(state: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild a generator resuming exactly where ``rng_state`` left off."""
    name = state.get("bit_generator")
    try:
        bit_gen_cls = getattr(np.random, str(name))
    except AttributeError as exc:
        raise StateError(f"unknown bit generator {name!r}") from exc
    bit_gen = bit_gen_cls()
    bit_gen.state = dict(state)
    return np.random.Generator(bit_gen)
