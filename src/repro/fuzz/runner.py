"""Fuzz session orchestration: case loop, metrics, artifacts, replay.

A session sweeps the registry round-robin: case ``c`` fuzzes operator
``specs[c % len(specs)]`` under the plan drawn from
``default_rng([root_seed, c])``.  Every case runs inside a
``fuzz.case`` span and bumps the per-operator pass/violation counters
in the process :class:`~repro.observability.metrics.MetricsRegistry`
(catalog: docs/observability.md).

A failing case is shrunk (:mod:`repro.fuzz.shrink`), written out as a
``repro-fuzzcase/v1`` JSON artifact, and reported with its one-line
replay command.  Replay resolves the operator by *name*, so a case
stays replayable under any ``--ops`` filter.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.engine import registry
from repro.observability.metrics import REGISTRY
from repro.observability.spans import span

from .differential import Violation, run_case
from .plan import ScenarioPlan, format_seed_spec, generate_plan, parse_seed_spec
from .scenarios import synthesize_stream
from .shrink import replay_shrink, shrink_case

__all__ = [
    "ARTIFACT_FORMAT",
    "CaseFailure",
    "FuzzReport",
    "run_fuzz",
    "replay_case",
    "write_artifact",
    "load_artifact_spec",
]

ARTIFACT_FORMAT = "repro-fuzzcase/v1"

# Fuzz metrics (catalog: docs/observability.md).
_M_CASES = REGISTRY.counter(
    "repro_fuzz_cases_total", "Differential fuzz cases executed",
    labels=("operator",),
)
_M_VIOLATIONS = REGISTRY.counter(
    "repro_fuzz_violations_total", "Fuzz relation violations detected",
    labels=("operator", "relation"),
)
_M_CASE_SECONDS = REGISTRY.histogram(
    "repro_fuzz_case_seconds", "Wall-clock seconds per fuzz case"
)
_M_SHRINK_STEPS = REGISTRY.counter(
    "repro_fuzz_shrink_steps_total", "Accepted shrink steps across failing cases"
)


@dataclass(frozen=True)
class CaseFailure:
    """One failing case, post-shrink, with its replay handle."""

    seed_spec: str
    plan: ScenarioPlan
    violations: tuple[Violation, ...]
    artifact: str | None = None

    @property
    def replay_command(self) -> str:
        return f"repro fuzz --replay '{self.seed_spec}'"


@dataclass
class FuzzReport:
    """Outcome of one fuzz session."""

    root_seed: int
    cases_run: int = 0
    seconds: float = 0.0
    #: operator name -> (cases, violating cases)
    per_operator: dict[str, tuple[int, int]] = field(default_factory=dict)
    failures: list[CaseFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def tally(self, operator: str, violated: bool) -> None:
        cases, bad = self.per_operator.get(operator, (0, 0))
        self.per_operator[operator] = (cases + 1, bad + int(violated))

    def render(self) -> str:
        lines = [
            f"fuzz seed={self.root_seed}: {self.cases_run} cases over "
            f"{len(self.per_operator)} operators in {self.seconds:.1f}s"
        ]
        width = max((len(name) for name in self.per_operator), default=8)
        for name in sorted(self.per_operator):
            cases, bad = self.per_operator[name]
            status = "FAIL" if bad else "ok"
            lines.append(f"  {name.ljust(width)}  cases={cases:<4d} violations={bad:<3d} {status}")
        for failure in self.failures:
            lines.append(f"FAIL {failure.seed_spec}")
            for violation in failure.violations:
                lines.append(f"  [{violation.relation}] {violation.detail}")
            if failure.artifact:
                lines.append(f"  artifact: {failure.artifact}")
            lines.append(f"  replay:   {failure.replay_command}")
        verdict = "OK" if self.ok else f"{len(self.failures)} failing case(s)"
        lines.append(f"result: {verdict}")
        return "\n".join(lines)


def resolve_specs(ops: Sequence[str] | None):
    """Registry specs for an operator filter; actionable ValueError on
    unknown names (the CLI maps ValueError to exit code 2)."""
    if not ops:
        return registry.specs()
    out = []
    for name in ops:
        try:
            out.append(registry.get(name))
        except KeyError as exc:
            raise ValueError(exc.args[0]) from None
    return out


def write_artifact(
    directory: str | Path,
    plan: ScenarioPlan,
    stream: np.ndarray,
    violations: Sequence[Violation],
) -> Path:
    """Persist one failing case as a ``repro-fuzzcase/v1`` JSON file."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    seed_spec = format_seed_spec(plan)
    doc = {
        "format": ARTIFACT_FORMAT,
        "seed_spec": seed_spec,
        "operator": plan.op,
        "plan": plan.to_dict(),
        "stream": np.asarray(stream).tolist(),
        "stream_sha256": hashlib.sha256(
            np.ascontiguousarray(stream, dtype=np.int64).tobytes()
        ).hexdigest(),
        "violations": [
            {"relation": v.relation, "detail": v.detail} for v in violations
        ],
        "replay": f"repro fuzz --replay '{seed_spec}'",
    }
    path = directory / f"fuzzcase-{plan.op}-s{plan.root_seed}-c{plan.case}.json"
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def load_artifact_spec(path: str | Path) -> str:
    """The seed-spec stored in a fuzzcase artifact (for ``--replay-file``)."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"artifact {path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or doc.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"artifact {path} is not a {ARTIFACT_FORMAT} document "
            f"(format={doc.get('format')!r} if it parsed at all)"
        )
    return str(doc["seed_spec"])


def replay_case(seed_spec: str) -> tuple[ScenarioPlan, np.ndarray, list[Violation]]:
    """Regenerate a case bit-identically from its seed-spec and rerun
    every relation.  Returns the (shrunk) plan, stream, and whatever
    violations reproduce."""
    op, root_seed, case, shrink = parse_seed_spec(seed_spec)
    try:
        spec = registry.get(op)
    except KeyError as exc:
        raise ValueError(exc.args[0]) from None
    plan = generate_plan(spec, root_seed, case)
    stream = synthesize_stream(spec, plan)
    plan, stream = replay_shrink(replace(plan, shrink=shrink), stream)
    return plan, stream, run_case(spec, plan, stream)


def run_fuzz(
    root_seed: int,
    *,
    cases: int = 200,
    ops: Sequence[str] | None = None,
    time_budget: float | None = None,
    soak: bool = False,
    artifact_dir: str | Path | None = "fuzzcases",
    on_failure: Callable[[CaseFailure], None] | None = None,
    relations: Sequence[str] | None = None,
) -> FuzzReport:
    """Run one fuzz session.

    ``soak`` ignores ``cases`` and keeps cycling the registry until the
    time budget (default 300 s) runs out; otherwise exactly ``cases``
    cases run, clipped by ``time_budget`` when one is given.
    ``relations`` narrows every case to the named relation subset (see
    :data:`repro.fuzz.differential.RELATIONS`) — the CI concurrency
    smoke runs ``("staleness",)`` this way; plan generation is
    unaffected, so a narrowed case keeps the seed-spec of its full run.
    """
    if cases < 1:
        raise ValueError(f"cases must be >= 1, got {cases}")
    if time_budget is not None and time_budget <= 0:
        raise ValueError(f"time budget must be > 0 seconds, got {time_budget}")
    wanted = frozenset(relations) if relations is not None else None
    specs = resolve_specs(ops)
    if soak and time_budget is None:
        time_budget = 300.0

    report = FuzzReport(root_seed=int(root_seed))
    t0 = time.monotonic()
    case = 0
    while True:
        if not soak and case >= cases:
            break
        if time_budget is not None and time.monotonic() - t0 >= time_budget:
            break
        spec = specs[case % len(specs)]
        plan = generate_plan(spec, root_seed, case)
        stream = synthesize_stream(spec, plan)
        t_case = time.perf_counter()
        with span("fuzz.case", "fuzz"):
            violations = run_case(spec, plan, stream, relations=wanted)
            if violations:
                plan, stream, violations = shrink_case(
                    spec,
                    plan,
                    stream,
                    run=lambda sp, pl, st: run_case(sp, pl, st, relations=wanted),
                )
        _M_CASE_SECONDS.observe(time.perf_counter() - t_case)
        _M_CASES.inc(operator=spec.name)
        report.tally(spec.name, bool(violations))
        if violations:
            _M_SHRINK_STEPS.inc(len(plan.shrink))
            for violation in violations:
                _M_VIOLATIONS.inc(operator=spec.name, relation=violation.relation)
            artifact = (
                str(write_artifact(artifact_dir, plan, stream, violations))
                if artifact_dir is not None
                else None
            )
            failure = CaseFailure(
                seed_spec=format_seed_spec(plan),
                plan=plan,
                violations=tuple(violations),
                artifact=artifact,
            )
            report.failures.append(failure)
            if on_failure is not None:
                on_failure(failure)
        report.cases_run += 1
        case += 1
    report.seconds = time.monotonic() - t0
    return report
