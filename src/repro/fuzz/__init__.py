"""Registry-driven differential fuzzer + deterministic simulation harness.

The paper's claims are theorems: ε-accuracy envelopes, mergeability,
and batching-independence must hold on *every* input, not just the
fixed streams the benchmarks replay.  This package generates seeded
adversarial scenarios (:mod:`~repro.fuzz.plan`,
:mod:`~repro.fuzz.scenarios`), runs every registered operator through
a differential executor comparing it against its exact oracle and
against itself under metamorphic transforms
(:mod:`~repro.fuzz.differential`, :mod:`~repro.fuzz.oracles`), shrinks
failures to minimal reproducing cases (:mod:`~repro.fuzz.shrink`), and
reports/replays them through the ``repro fuzz`` CLI
(:mod:`~repro.fuzz.runner`).  See docs/testing.md for where this sits
in the test pyramid and how replay works.
"""

from .differential import (
    REBATCH_ENVELOPE,
    REBATCH_STATE_EXACT,
    SHARD_PROBE_EXACT,
    SHARD_STATE_EXACT,
    Violation,
    classify_like,
    declassify,
    run_case,
)
from .oracles import check_oracle
from .plan import (
    BIT_KINDS,
    ITEM_KINDS,
    SEED_SPEC_PREFIX,
    SHRINK_STEPS,
    FaultPlan,
    ScenarioPlan,
    apply_shrink_step,
    format_seed_spec,
    generate_plan,
    parse_seed_spec,
)
from .runner import (
    ARTIFACT_FORMAT,
    CaseFailure,
    FuzzReport,
    load_artifact_spec,
    replay_case,
    run_fuzz,
    write_artifact,
)
from .scenarios import synthesize_stream
from .shrink import replay_shrink, shrink_case

__all__ = [
    "ARTIFACT_FORMAT",
    "BIT_KINDS",
    "ITEM_KINDS",
    "SEED_SPEC_PREFIX",
    "SHRINK_STEPS",
    "CaseFailure",
    "FaultPlan",
    "FuzzReport",
    "ScenarioPlan",
    "Violation",
    "REBATCH_ENVELOPE",
    "REBATCH_STATE_EXACT",
    "SHARD_PROBE_EXACT",
    "SHARD_STATE_EXACT",
    "apply_shrink_step",
    "check_oracle",
    "classify_like",
    "declassify",
    "format_seed_spec",
    "generate_plan",
    "load_artifact_spec",
    "parse_seed_spec",
    "replay_case",
    "replay_shrink",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "synthesize_stream",
    "write_artifact",
]
