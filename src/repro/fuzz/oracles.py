"""Exact-oracle envelope checks for every registered operator.

``check_oracle(spec, op, stream)`` compares a fully-ingested operator
against brute-force ground truth computed from the raw stream and
returns human-readable violation strings (empty = within envelope).

Only *deterministic* guarantee sides are asserted: Count-Min never
undercounts, Misra-Gries never overcounts, windowed reductions carry
one-sided ε-slack, DGIM/SBBC/Lee-Ting carry their published two-sided
or additive bounds.  Probabilistic sides (the CMS/Count-Sketch upper
tails, which hold only with probability 1−δ per query) get sanity
bounds, not envelopes — a fuzzer that asserts a probabilistic bound on
every case manufactures its own flaky failures.

Operators without a registered checker fall back to a finiteness
sanity check, so a newly registered synopsis is never silently
un-fuzzed — it is envelope-checked as soon as a checker is added here,
and metamorphically checked (differential.py) from day one.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable

import numpy as np

__all__ = ["check_oracle", "ORACLES"]

_TOL = 1e-9


def _counts(stream: np.ndarray) -> Counter:
    return Counter(int(x) for x in stream.tolist())


def _items_of_interest(stream: np.ndarray, universe: int) -> list[int]:
    """Every item that occurs, plus a few absent ones (estimates for
    never-seen items must respect the envelope too)."""
    present = sorted({int(x) for x in stream.tolist()})
    absent = [i for i in range(min(universe, 8)) if i not in set(present)]
    return present + absent


def _tail(stream: np.ndarray, window: int) -> np.ndarray:
    return stream[-int(window):] if window else stream


def _within(lo: float, est: float, hi: float, label: str) -> list[str]:
    if lo - _TOL <= est <= hi + _TOL:
        return []
    return [f"{label}: estimate {est} outside [{lo}, {hi}]"]


# ----------------------------------------------------------------------
# Bit counters
# ----------------------------------------------------------------------
def _ck_basic_counter(spec, op, stream, plan):
    m = int(_tail(stream, op.window).sum())
    return _within(m, op.query(), m + op.eps * max(m, 1), f"{spec.name} window count")


def _ck_sbbc(spec, op, stream, plan):
    v = op.value()
    if v is None:  # overflowed: the ladder above takes over, no claim
        return []
    m = int(_tail(stream, op.window).sum())
    return _within(m, v, m + op.lam, f"{spec.name} window count")


def _ck_dgim(spec, op, stream, plan):
    m = int(_tail(stream, op.window).sum())
    slack = op.eps * max(m, 1) + 1
    return _within(m - slack, op.query(), m + slack, f"{spec.name} window count")


def _ck_lee_ting(spec, op, stream, plan):
    m = int(_tail(stream, op.window).sum())
    return _within(m, op.query(), m + op.lam, f"{spec.name} window count")


# ----------------------------------------------------------------------
# Windowed value reductions
# ----------------------------------------------------------------------
def _ck_windowed_sum(spec, op, stream, plan):
    s = int(_tail(stream, op.window).sum())
    return _within(s, op.query(), s + op.eps * max(s, 1), f"{spec.name} window sum")


def _ck_windowed_mean(spec, op, stream, plan):
    occupied = min(len(stream), op.window)
    if occupied == 0:
        return []
    s = int(_tail(stream, op.window).sum())
    return _within(
        s / occupied,
        op.query(),
        (s + op.eps * max(s, 1)) / occupied,
        f"{spec.name} window mean",
    )


def _ck_lp_norm(spec, op, stream, plan):
    sp = float(np.sum(_tail(stream, op.window).astype(np.float64) ** op.p))
    est_p = float(op.query()) ** op.p
    slack = op.eps * max(sp, 1.0) + 1e-6 * max(sp, 1.0)
    return _within(sp - 1e-6 * max(sp, 1.0), est_p, sp + slack, f"{spec.name} p-sum")


def _ck_variance(spec, op, stream, plan):
    # Variance is a difference of two one-sided (1+ε) sums, so the
    # error is additive: |est − var| ≤ ε·E[x²] + 2ε(1+ε)·E[x]²
    # (windowed_moments module doc).  Plus non-negativity.
    v = op.query()
    if v < -_TOL:
        return [f"{spec.name}: negative variance {v}"]
    tail = _tail(stream, op.window).astype(np.float64)
    if not tail.size:
        return []
    ex, ex2 = float(tail.mean()), float(np.mean(tail**2))
    tv = ex2 - ex * ex
    slack = op.eps * ex2 + 2.0 * op.eps * (1.0 + op.eps) * ex * ex
    return _within(
        max(0.0, tv - slack), v, tv + slack, f"{spec.name} window variance"
    )


def _ck_histogram(spec, op, stream, plan):
    tail = _tail(stream, op.window)
    out: list[str] = []
    edges = np.asarray(op.edges, dtype=np.float64)
    est = op.histogram()
    for i in range(op.num_buckets):
        true = int(((tail >= edges[i]) & (tail < edges[i + 1])).sum())
        out += _within(
            true, float(est[i]), true + op.eps * max(true, 1),
            f"{spec.name} bucket {i}",
        )
    return out


# ----------------------------------------------------------------------
# Whole-stream frequency estimators
# ----------------------------------------------------------------------
def _ck_exact_counters(spec, op, stream, plan):
    truth = _counts(stream)
    out = []
    for item in _items_of_interest(stream, plan.universe):
        f = truth.get(item, 0)
        if op.estimate(item) != f:
            out.append(f"{spec.name}: item {item} estimate {op.estimate(item)} != {f}")
    return out


def _ck_mg_family(spec, op, stream, plan):
    truth = _counts(stream)
    tol = len(stream) / op.capacity
    out = []
    for item in _items_of_interest(stream, plan.universe):
        f = truth.get(item, 0)
        out += _within(f - tol, op.estimate(item), f, f"{spec.name} item {item}")
    return out


def _ck_lossy_counting(spec, op, stream, plan):
    truth = _counts(stream)
    tol = op.eps * len(stream) + 1
    out = []
    for item in _items_of_interest(stream, plan.universe):
        f = truth.get(item, 0)
        out += _within(f - tol, op.estimate(item), f, f"{spec.name} item {item}")
    return out


def _ck_space_saving(spec, op, stream, plan):
    truth = _counts(stream)
    tol = len(stream) / op.capacity
    out = []
    for item in _items_of_interest(stream, plan.universe):
        f, est = truth.get(item, 0), op.estimate(item)
        if est == 0:
            # Untracked is only legal below the guarantee threshold.
            if f > tol + _TOL:
                out.append(
                    f"{spec.name}: item {item} untracked but true count "
                    f"{f} > n/S = {tol}"
                )
        else:
            out += _within(f, est, f + tol, f"{spec.name} item {item}")
    return out


def _ck_cms_lower(spec, op, stream, plan):
    # Deterministic side only: Count-Min never undercounts.
    truth = _counts(stream)
    out = []
    for item in _items_of_interest(stream, plan.universe):
        f, est = truth.get(item, 0), op.point_query(item)
        if est < f - _TOL:
            out.append(f"{spec.name}: item {item} point query {est} undercounts {f}")
    return out


def _ck_dyadic(spec, op, stream, plan):
    out = _ck_cms_lower(spec, op, stream, plan)
    full = op.range_query(0, plan.universe - 1)
    if full < len(stream) - _TOL:
        out.append(
            f"{spec.name}: full-universe range query {full} undercounts n={len(stream)}"
        )
    return out


def _ck_countsketch(spec, op, stream, plan):
    # Unbiased, two-sided probabilistic bound: sanity only.
    truth = _counts(stream)
    out = []
    for item in _items_of_interest(stream, plan.universe):
        f, est = truth.get(item, 0), op.point_query(item)
        if not np.isfinite(est) or abs(est - f) > len(stream) + _TOL:
            out.append(f"{spec.name}: item {item} estimate {est} vs true {f}")
    return out


# ----------------------------------------------------------------------
# Sliding-window frequency / heavy hitters
# ----------------------------------------------------------------------
def _ck_sliding_freq(spec, op, stream, plan):
    window = op.window
    tail_counts = _counts(_tail(stream, window))
    out = []
    for item in _items_of_interest(stream, plan.universe):
        f = tail_counts.get(item, 0)
        out += _within(
            f - op.eps * window, op.estimate(item), f, f"{spec.name} item {item}"
        )
    return out


def _ck_windowed_cms(spec, op, stream, plan):
    tail_counts = _counts(_tail(stream, op.window))
    out = []
    for item in _items_of_interest(stream, plan.universe):
        f, est = tail_counts.get(item, 0), op.point_query(item)
        if est < f - _TOL:
            out.append(f"{spec.name}: item {item} point query {est} undercounts {f}")
    return out


def _ck_infinite_hh(spec, op, stream, plan):
    t = len(stream)
    truth = _counts(stream)
    reported = {int(k): v for k, v in op.query().items()}
    out = []
    for item, f in truth.items():
        if f >= op.phi * t and item not in reported:
            out.append(
                f"{spec.name}: heavy hitter {item} (count {f} >= "
                f"phi*t = {op.phi * t}) not reported"
            )
    floor = (op.phi - op.eps) * t - 1
    for item in reported:
        if truth.get(item, 0) <= floor - _TOL:
            out.append(
                f"{spec.name}: reported {item} has count {truth.get(item, 0)} "
                f"<= (phi-eps)*t - 1 = {floor}"
            )
    return out


def _ck_sliding_hh(spec, op, stream, plan):
    window = op.estimator.window
    wl = min(len(stream), window)
    tail_counts = _counts(_tail(stream, window))
    reported = {int(k) for k in op.query()}
    out = []
    for item, f in tail_counts.items():
        if f >= op.phi * wl and item not in reported:
            out.append(
                f"{spec.name}: window heavy hitter {item} (count {f} >= "
                f"phi*|W| = {op.phi * wl}) not reported"
            )
    return out


# ----------------------------------------------------------------------
# Exponential-histogram moments: certificate bounds vs. brute force
# ----------------------------------------------------------------------
def _ck_eh(spec, op, stream, plan, stat: str):
    tail = _tail(stream, op.window).astype(np.float64)
    occ = int(tail.size)
    out: list[str] = []
    if op.item_count() != occ:
        out.append(f"{spec.name}: item_count {op.item_count()} != {occ}")
    if not occ:
        return out
    if stat == "mean":
        truth = float(tail.mean())
        lo, hi = op.mean_bounds()
        est, cap = op.mean(), op.mean_error_bound()
    else:
        truth = float(np.mean(tail**2) - tail.mean() ** 2)
        lo, hi = op.variance_bounds()
        est, cap = op.variance(), op.variance_error_bound()
    out += _within(lo, truth, hi, f"{spec.name} true {stat} vs certificate")
    out += _within(lo, est, hi, f"{spec.name} {stat} estimate vs certificate")
    if hi - lo > cap + _TOL:
        out.append(
            f"{spec.name}: certificate width {hi - lo} exceeds declared "
            f"bound {cap}"
        )
    if op.buckets > op.bucket_bound():
        out.append(
            f"{spec.name}: {op.buckets} buckets exceed bound "
            f"{op.bucket_bound()}"
        )
    return out


def _ck_eh_mean(spec, op, stream, plan):
    return _ck_eh(spec, op, stream, plan, "mean")


def _ck_eh_variance(spec, op, stream, plan):
    return _ck_eh(spec, op, stream, plan, "variance")


# ----------------------------------------------------------------------
# Drift detectors: audit-log consistency + no-false-negative tripwire
# ----------------------------------------------------------------------
def _ck_drift(spec, op, stream, plan):
    """Three layers, all batching-agnostic because they run off the
    detector's own audit log rather than the fuzz plan:

    1. *Certificate soundness* — each logged estimate must be within
       its logged certified width of the brute-force windowed mean.
    2. *Replay self-consistency* — feeding the log through a fresh
       monitor core must reproduce the recorded event sequence exactly.
    3. *No-false-negative tripwire* — replay the core over the *exact*
       windowed estimates (zero certificate width); if that fires a
       drift whose exceedance is larger than the worst estimate error
       could explain and the real detector stayed silent, the detector
       lost a detection.  One-sided by construction: false *positives*
       are never asserted here (stationarity is a statistical property,
       checked by seeded regression tests, not a fuzz invariant).
    """
    out: list[str] = []
    try:
        op.check_invariants()
    except Exception as exc:  # noqa: BLE001 - surface as a finding
        out.append(f"{spec.name}: check_invariants failed: {exc}")
    history = op.history()
    drifts, warns, last = op.query()
    n_drift = sum(1 for e in op.events if e.kind == "drift")
    n_warn = sum(1 for e in op.events if e.kind == "warn")
    if (drifts, warns) != (n_drift, n_warn):
        out.append(
            f"{spec.name}: query {op.query()} disagrees with event log "
            f"({n_drift} drifts, {n_warn} warns)"
        )
    if len(history) != op.updates:
        out.append(
            f"{spec.name}: {len(history)} audit entries for "
            f"{op.updates} updates"
        )
        return out

    # Exact per-update windowed means, replayed from the raw stream at
    # the logged arrival counts.
    window, scale = op.window, op.scale
    weights, prev = [], 0
    for items, _, _ in history:
        weights.append(items - prev)
        prev = items
    exact, widths = [], []
    ok = len(history) == 0 or history[-1][0] <= len(stream)
    if ok:
        for idx, (items, p, err) in enumerate(history):
            tail = stream[max(0, items - window):items].astype(np.float64)
            pe = (
                min(1.0, max(0.0, float(tail.mean()) / scale))
                if tail.size else 0.0
            )
            if np.isfinite(err) and abs(p - pe) > err + 1e-6:
                out.append(
                    f"{spec.name}: update at {items} items: estimate {p} "
                    f"is {abs(p - pe)} from exact {pe}, beyond certified "
                    f"{err}"
                )
            exact.append(pe)
            widths.append(err if np.isfinite(err) else 0.0)

    # Replay self-consistency on the logged (approximate) history.
    core = op.fresh_monitor()
    got = []
    for i, (items, p, err) in enumerate(history):
        kind, _, _ = core.update(p, weights[i], err)
        if kind is not None:
            got.append((i + 1, kind))
    want = [(e.update, e.kind) for e in op.events]
    if got != want:
        out.append(
            f"{spec.name}: replaying the audit log yields events {got}, "
            f"detector recorded {want}"
        )

    if not ok or not history:
        return out

    # No-false-negative: exact-stream replay with zero-width
    # certificates.  B bounds every |p − p_exact|; thresholds move by
    # O(B) (levels are means of estimates, dispersions are 1/2-Hölder
    # in the mean, and the real detector adds at most 2B of certificate
    # slack), so a drift the exact replay finds with margin beyond
    # `slack` was detectable despite estimation error.
    big = max(widths) if widths else 0.0
    slack = (
        2.0 * (big + np.sqrt(big))
        + 2.0 * big
        + op.drift_level * 1.5 * big
        + 1e-6
    )
    core_e = op.fresh_monitor()
    for i, pe in enumerate(exact):
        kind, stat, thr = core_e.update(pe, weights[i], 0.0)
        if (
            kind == "drift"
            and np.isfinite(thr)
            and stat - thr > slack
            and drifts == 0
        ):
            out.append(
                f"{spec.name}: exact replay fires drift at update "
                f"{i + 1} with margin {stat - thr} > slack {slack}, but "
                f"the detector never fired"
            )
            break
    return out


def _ck_default(spec, op, stream, plan):
    """Fallback for operators without a dedicated checker: the probe
    must at least produce finite values."""
    if spec.probe is None:
        return []
    flat = np.asarray(spec.probe(op), dtype=object).ravel()
    numeric = [float(v) for v in flat if isinstance(v, (int, float, np.number))]
    if all(np.isfinite(numeric)):
        return []
    return [f"{spec.name}: probe produced non-finite values"]


#: Per-operator envelope checkers, keyed by registry name.
ORACLES: dict[str, Callable[[Any, Any, np.ndarray, Any], list[str]]] = {
    "ParallelBasicCounter": _ck_basic_counter,
    "SBBC": _ck_sbbc,
    "DGIMCounter": _ck_dgim,
    "LeeTingCounter": _ck_lee_ting,
    "ParallelWindowedSum": _ck_windowed_sum,
    "ParallelWindowedMean": _ck_windowed_mean,
    "WindowedLpNorm": _ck_lp_norm,
    "WindowedVariance": _ck_variance,
    "WindowedHistogram": _ck_histogram,
    "ExactCounters": _ck_exact_counters,
    "MisraGriesSummary": _ck_mg_family,
    "SequentialMisraGries": _ck_mg_family,
    "ParallelFrequencyEstimator": _ck_mg_family,
    "IndependentMGEnsemble": _ck_mg_family,
    "LossyCounting": _ck_lossy_counting,
    "SpaceSaving": _ck_space_saving,
    "ParallelCountMin": _ck_cms_lower,
    "SequentialCountMin": _ck_cms_lower,
    "DyadicCountMin": _ck_dyadic,
    "ParallelCountSketch": _ck_countsketch,
    "WindowedCountMin": _ck_windowed_cms,
    "BasicSlidingFrequency": _ck_sliding_freq,
    "SpaceEfficientSlidingFrequency": _ck_sliding_freq,
    "WorkEfficientSlidingFrequency": _ck_sliding_freq,
    "InfiniteHeavyHitters": _ck_infinite_hh,
    "SlidingHeavyHitters": _ck_sliding_hh,
    "ExponentialHistogramMean": _ck_eh_mean,
    "ExponentialHistogramVariance": _ck_eh_variance,
    "DDMDriftDetector": _ck_drift,
    "EWMADriftDetector": _ck_drift,
}


def check_oracle(spec, op, stream: np.ndarray, plan) -> list[str]:
    """All envelope violations of ``op`` (fully ingested with
    ``stream``) against brute-force ground truth; empty when clean."""
    checker = ORACLES.get(spec.name, _ck_default)
    return checker(spec, op, stream, plan)
