"""The differential executor: one fuzz case, every applicable relation.

Given a registry spec, a :class:`~repro.fuzz.plan.ScenarioPlan`, and
its synthesized stream, :func:`run_case` runs the operator through

``oracle``
    the reference run (plan batching, plain ingest) against
    brute-force ground truth (:mod:`repro.fuzz.oracles`);
``rebatch``
    split-batch vs one-batch — probe-identical for most operators,
    envelope-bounded for the block/ensemble summaries whose internal
    boundaries move with batching;
``prepared``
    shared-prework ingest (``ingest_prepared`` over one
    :class:`~repro.pram.plan.PreparedBatch` per batch) vs plain
    ``ingest`` — exact, for every preparable operator;
``fused``
    the stacked multi-operator kernel
    (:class:`~repro.engine.fusion.FusedIngestPlan` over the same
    per-batch plans) vs the serial ``ingest_prepared`` mirror —
    state-exact *and* ledger-exact: both runs execute under tracking
    ledgers and their (work, depth) totals must be identical, for
    every operator with the ``fused`` capability;
``mergetree``
    shard + k-ary merge-tree fold vs serial ingest — state-exact for
    linear sketches, probe-exact for exact counters, envelope-bounded
    for the capacity-bounded (MG/Space-Saving) family, per the
    merge-algebra rules (tests/test_merge_algebra.py);
``reshard``
    elastic sharded ingest through
    :class:`~repro.resilience.ElasticShardedIngestor` under a seeded
    2→64→4 rescale schedule (checkpoint → k-ary re-fold → repartition
    at two batch boundaries) vs the fixed reference run — and, on
    fault-bearing plans, with seeded ``shard_crash``/``shard_stall``
    supervision (replay + degrade) active; exactness follows the same
    mergeable classification as ``mergetree``;
``checkpoint``
    a mid-stream driver hook snapshots ``state_dict`` after the plan's
    checkpoint batch, round-trips it through the canonical state codec,
    restores into a fresh build, and replays the suffix — must land
    bit-identically on the full run's state;
``faults``
    the resilient :class:`~repro.stream.minibatch.MinibatchDriver`
    under the plan's seeded fault schedule vs a mirror that replays the
    injector's *effective* delivery sequence (dedup by batch id, poison
    dead-lettered, transients retried) — the faulty path must converge
    to the clean path's state;
``staleness``
    the thread-local buffered concurrent ingest path
    (:class:`~repro.concurrent.ConcurrentIngestor`, B derived from the
    plan's batch size) vs the bounded-staleness contract: after every
    batch the published snapshot must cover all but at most B ingested
    items, snapshot answers must lie within the oracle envelope of the
    covered (≤ B items stale) multiset, and after a final ``sync()``
    the global state must match the reference — bit-identically for
    the linear sketches (``STALENESS_SYNC_EXACT``), within the oracle
    envelope for the rest of the mergeable family.

Which relations apply is driven by the spec's capability flags
(``mergeable`` → mergetree, ``preparable`` → prepared, ``state_dict``
presence → checkpoint, ``concurrent`` → staleness) plus the exactness
classification below.  The classification is keyed by registry *name*;
an unknown name falls back to envelope checks — conservative, never
vacuous.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.concurrent.buffers import ConcurrentIngestor
from repro.engine.fusion import FusedIngestPlan
from repro.engine.mergetree import merge_tree_ingest
from repro.pram.backend import SerialBackend
from repro.pram.cost import CostLedger, tracking
from repro.pram.plan import PreparedBatch
from repro.resilience.faults import (
    FaultInjector,
    PoisonBatchError,
    RetryPolicy,
    validate_batch,
)
from repro.resilience.reshard import ElasticShardedIngestor
from repro.resilience.state import dumps, loads
from repro.stream.minibatch import MinibatchDriver

from .oracles import check_oracle
from .plan import ScenarioPlan

__all__ = [
    "Violation",
    "run_case",
    "classify_like",
    "REBATCH_ENVELOPE",
    "REBATCH_STATE_EXACT",
    "SHARD_PROBE_EXACT",
    "SHARD_STATE_EXACT",
    "STALENESS_SYNC_EXACT",
    "RELATIONS",
]


#: Operators whose answers legitimately depend on batch boundaries:
#: every windowed synopsis whose internal block structure follows the
#: minibatch grid (a whole-stream batch larger than the window takes
#: the reset-and-replay path), plus the per-processor MG ensembles and
#: ensemble-fed heavy hitters.  For these the rebatch relation holds
#: only up to the accuracy envelope.  Everything else must answer
#: probe-identically under any batching.
REBATCH_ENVELOPE = {
    "BasicSlidingFrequency",
    "DDMDriftDetector",
    "EWMADriftDetector",
    "IndependentMGEnsemble",
    "InfiniteHeavyHitters",
    "ParallelBasicCounter",
    "ParallelFrequencyEstimator",
    "ParallelWindowedMean",
    "ParallelWindowedSum",
    "SlidingHeavyHitters",
    "SpaceEfficientSlidingFrequency",
    "WindowedCountMin",
    "WindowedHistogram",
    "WindowedLpNorm",
    "WindowedVariance",
    "WorkEfficientSlidingFrequency",
}

#: Rebatch-probe-exact operators whose *canonical state* is also
#: independent of batching (no batch-boundary bookkeeping at all).
REBATCH_STATE_EXACT = {
    "DyadicCountMin",
    "ExponentialHistogramMean",
    "ExponentialHistogramVariance",
    "MisraGriesSummary",
    "ParallelCountMin",
    "ParallelCountSketch",
    "SBBC",
    "SequentialMisraGries",
}

#: Mergeable operators whose shard + merge-tree fold answers exactly
#: like serial ingest (linear sketches and exact counters); the rest of
#: the mergeable family (MG/Space-Saving) re-applies eviction at merge
#: time and is only envelope-equivalent.
SHARD_PROBE_EXACT = {
    "ExactCounters",
    "ParallelCountMin",
    "ParallelCountSketch",
    "SequentialCountMin",
}

#: Shard-probe-exact operators that are additionally state-exact
#: (cell-wise-additive merges over identical geometry).
SHARD_STATE_EXACT = {
    "ParallelCountMin",
    "ParallelCountSketch",
}

#: Concurrent-capable operators whose post-``sync()`` global state must
#: be bit-identical to the serial fold (cell-wise-additive merges over
#: identical geometry — the same family as ``SHARD_STATE_EXACT``); the
#: MG family re-applies eviction at merge time and is checked against
#: the oracle envelope instead.
STALENESS_SYNC_EXACT = {
    "ParallelCountMin",
    "ParallelCountSketch",
}

_CLASSIFICATIONS = (
    REBATCH_ENVELOPE,
    REBATCH_STATE_EXACT,
    SHARD_PROBE_EXACT,
    SHARD_STATE_EXACT,
    STALENESS_SYNC_EXACT,
)

#: Every relation :func:`run_case` can run (the valid values for its
#: ``relations`` filter and the CLI's ``--relations``).
RELATIONS = (
    "oracle",
    "rebatch",
    "prepared",
    "fused",
    "mergetree",
    "reshard",
    "checkpoint",
    "faults",
    "staleness",
)


def classify_like(name: str, like: str) -> None:
    """Give ``name`` the exactness classification of operator ``like``
    in every relation — how the mutation smoke tests make a deliberately
    broken subclass face the same assertions as its parent."""
    for bucket in _CLASSIFICATIONS:
        if like in bucket:
            bucket.add(name)
        else:
            bucket.discard(name)


def declassify(name: str) -> None:
    """Remove ``name`` from every exactness classification (test cleanup)."""
    for bucket in _CLASSIFICATIONS:
        bucket.discard(name)


@dataclass(frozen=True)
class Violation:
    """One relation the operator failed on this case."""

    relation: str
    detail: str


def _batches(stream: np.ndarray, batch_size: int) -> list[np.ndarray]:
    return [
        stream[start : start + batch_size]
        for start in range(0, len(stream), batch_size)
    ]


def _mirror_ingest(op, batches) -> None:
    """Replay the driver's per-batch ingest path call-for-call: one
    shared :class:`PreparedBatch` for preparable operators, plain
    ``ingest`` otherwise (the serial engine DAG does exactly this)."""
    prepared = hasattr(op, "ingest_prepared")
    for batch in batches:
        if prepared:
            op.ingest_prepared(PreparedBatch(batch))
        else:
            op.ingest(batch)


def _state(op) -> bytes | None:
    if hasattr(op, "state_dict"):
        return dumps(op.state_dict())
    return None


def _probe(spec, op):
    return spec.probe(op) if spec.probe is not None else None


@dataclass(frozen=True)
class _Run:
    """An operator plus its canonical state *as of the end of ingest*.

    The state snapshot is taken before any probing, because queries may
    legitimately mutate internal bookkeeping (lazy window expiry);
    comparing post-probe states would flag that as a divergence.
    """

    op: object
    state: bytes | None

    @classmethod
    def of(cls, op) -> "_Run":
        return cls(op, _state(op))


def _compare(
    spec, relation: str, reference: _Run, variant: _Run, *, state_exact: bool
) -> list[Violation]:
    out: list[Violation] = []
    if state_exact and reference.state != variant.state:
        out.append(Violation(relation, "canonical state bytes differ"))
    ref_probe, var_probe = _probe(spec, reference.op), _probe(spec, variant.op)
    if ref_probe != var_probe:
        out.append(
            Violation(
                relation,
                f"probe mismatch: reference {ref_probe!r} vs variant {var_probe!r}",
            )
        )
    return out


def _envelope(spec, relation: str, variant, stream, plan) -> list[Violation]:
    return [Violation(relation, msg) for msg in check_oracle(spec, variant, stream, plan)]


# ----------------------------------------------------------------------
# Relations
# ----------------------------------------------------------------------
def _relation_rebatch(spec, plan, stream, reference: _Run) -> list[Violation]:
    one = spec.build()
    one.ingest(stream)
    if spec.name in REBATCH_ENVELOPE:
        return _envelope(spec, "rebatch", one, stream, plan)
    return _compare(
        spec, "rebatch", reference, _Run.of(one),
        state_exact=spec.name in REBATCH_STATE_EXACT,
    )


def _relation_prepared(spec, plan, stream, reference: _Run) -> list[Violation]:
    prepped = spec.build()
    for batch in _batches(stream, plan.batch_size):
        prepped.ingest_prepared(PreparedBatch(batch))
    # Shared prework is a pure wall-clock optimization: state (when
    # serializable) and answers must match plain ingest exactly.
    return _compare(
        spec, "prepared", reference, _Run.of(prepped),
        state_exact=hasattr(prepped, "state_dict"),
    )


def _relation_fused(spec, plan, stream, reference: _Run) -> list[Violation]:
    """Fused kernel vs serial shared-prework mirror, state- and
    ledger-exact.

    Both runs execute under their own tracking ledger; fusion is a pure
    wall-clock optimization, so the charged (work, depth) totals must
    match bit-for-bit alongside the canonical state and probes."""
    fused_op = spec.build()
    fusion = FusedIngestPlan({spec.name: fused_op})
    fused_ledger = CostLedger()
    with tracking(fused_ledger):
        for batch in _batches(stream, plan.batch_size):
            fusion.execute(PreparedBatch(batch))
    serial_op = spec.build()
    serial_ledger = CostLedger()
    with tracking(serial_ledger):
        for batch in _batches(stream, plan.batch_size):
            serial_op.ingest_prepared(PreparedBatch(batch))
    out = _compare(
        spec, "fused", _Run.of(serial_op), _Run.of(fused_op),
        state_exact=hasattr(fused_op, "state_dict"),
    )
    fused_cost = (fused_ledger.work, fused_ledger.depth)
    serial_cost = (serial_ledger.work, serial_ledger.depth)
    if fused_cost != serial_cost:
        out.append(
            Violation(
                "fused",
                f"ledger totals diverge: fused {fused_cost} "
                f"vs serial {serial_cost}",
            )
        )
    return out


def _relation_mergetree(spec, plan, stream, reference: _Run) -> list[Violation]:
    tree = merge_tree_ingest(
        spec.build(), stream, shards=plan.shards, arity=plan.arity
    )
    if spec.name in SHARD_PROBE_EXACT:
        return _compare(
            spec, "mergetree", reference, _Run.of(tree),
            state_exact=spec.name in SHARD_STATE_EXACT,
        )
    return _envelope(spec, "mergetree", tree, stream, plan)


#: The elastic schedule every reshard case runs: scale far out, then
#: back in, exercising both the fold-heavy shrink and the fan-out grow.
_RESHARD_SCHEDULE = (2, 64, 4)


def _relation_reshard(spec, plan, stream, reference: _Run) -> list[Violation]:
    batches = _batches(stream, plan.batch_size)
    start, wide, narrow = _RESHARD_SCHEDULE
    # Supervision (blob-checkpointed shard tasks, replay, degrade) costs
    # a pickle per active shard per batch, so it rides only on plans
    # that already pay for fault handling; rescale equivalence itself is
    # checked on every mergeable case.  stall_seconds > timeout so an
    # injected stall is always caught; a *false* stall (healthy task on
    # a slow machine) only triggers replay/degrade, which preserves the
    # same exactness class.
    injector = timeout = None
    if plan.faults.any():
        injector = FaultInjector(
            plan.fault_seed,
            shard_crash=0.06,
            shard_stall=0.03,
            stall_seconds=0.004,
        )
        timeout = 0.002
    elastic = spec.build()
    ingestor = ElasticShardedIngestor(
        elastic,
        shards=start,
        arity=plan.arity,
        retry=RetryPolicy(max_attempts=3),
        timeout=timeout,
        injector=injector,
        label=spec.name,
    )
    n = len(batches)
    up_at, down_at = n // 3, max(n // 3 + 1, (2 * n) // 3)
    for i, batch in enumerate(batches):
        if i == up_at:
            ingestor.rescale(wide, batch_index=i)
        if i == down_at:
            ingestor.rescale(narrow, batch_index=i)
        ingestor.ingest(batch, batch_id=i)
    # Short streams still execute the whole schedule (the transitions
    # themselves must be harmless on empty/absent suffixes).
    if n <= up_at:
        ingestor.rescale(wide)
    if n <= down_at:
        ingestor.rescale(narrow)
    ingestor.sync()
    if spec.name in SHARD_PROBE_EXACT:
        return _compare(
            spec, "reshard", reference, _Run.of(elastic),
            state_exact=spec.name in SHARD_STATE_EXACT,
        )
    return _envelope(spec, "reshard", elastic, stream, plan)


def _relation_checkpoint(spec, plan, stream) -> list[Violation]:
    batches = _batches(stream, plan.batch_size)
    ck = min(plan.checkpoint_at, len(batches) - 1)
    full = spec.build()
    driver = MinibatchDriver({spec.name: full})
    snapshot: dict[str, bytes] = {}

    def probe_hook(drv: MinibatchDriver, report) -> None:
        if report.index == ck:
            snapshot["state"] = dumps(full.state_dict())

    driver.add_hook(probe_hook)
    driver.run(stream, plan.batch_size)
    if "state" not in snapshot:
        return [Violation("checkpoint", f"hook never fired at batch {ck}")]

    restored = spec.build()
    restored.load_state(loads(snapshot["state"]))
    _mirror_ingest(restored, batches[ck + 1 :])
    return _compare(
        spec, "checkpoint", _Run.of(full), _Run.of(restored), state_exact=True
    )


def _rates(plan: ScenarioPlan) -> dict[str, float]:
    return plan.faults.to_dict()


def _effective_payloads(plan: ScenarioPlan, stream: np.ndarray) -> list[np.ndarray]:
    """The payload sequence a correct driver actually ingests under the
    plan's fault schedule: the injector's delivery order, minus
    duplicate batch ids and poisoned payloads (transient failures are
    retried to success, so their payloads stay)."""
    injector = FaultInjector(plan.fault_seed, **_rates(plan))
    chunks = (
        (start // plan.batch_size, stream[start : start + plan.batch_size])
        for start in range(0, len(stream), plan.batch_size)
    )
    seen: set[int] = set()
    payloads: list[np.ndarray] = []
    for delivery in injector.deliveries(chunks):
        if delivery.batch_id in seen:
            continue
        try:
            validate_batch(delivery.payload)
        except PoisonBatchError:
            continue
        seen.add(delivery.batch_id)
        payloads.append(delivery.payload)
    return payloads


def _relation_faults(spec, plan, stream) -> list[Violation]:
    faulty_op = spec.build()
    driver = MinibatchDriver(
        {spec.name: faulty_op},
        fault_injector=FaultInjector(plan.fault_seed, **_rates(plan)),
        # transient_failures defaults to 2; 4 attempts always win.
        retry_policy=RetryPolicy(max_attempts=4),
    )
    driver.run(stream, plan.batch_size)

    mirror = spec.build()
    _mirror_ingest(mirror, _effective_payloads(plan, stream))
    return _compare(
        spec, "faults", _Run.of(mirror), _Run.of(faulty_op),
        state_exact=hasattr(mirror, "state_dict"),
    )


def _staleness_params(plan: ScenarioPlan) -> tuple[int, int]:
    """B (staleness bound) and T (buffer strands) for a plan — derived
    from existing plan fields, so replay files stay compatible."""
    return max(4, plan.batch_size), 2 + plan.case % 3


def _relation_staleness(spec, plan, stream, reference: _Run) -> list[Violation]:
    """Buffered concurrent ingest against the bounded-staleness
    contract.

    Runs under :class:`~repro.pram.backend.SerialBackend` so the strand
    schedule (and therefore the flush order) is deterministic and the
    case replays exactly.  The contract itself is
    schedule-independent — what is checked never depends on *which*
    interleaving produced the flush log:

    * after every batch, the unflushed backlog and the published
      snapshot's lag are both at most B items;
    * the snapshot's answers lie within the oracle envelope of the
      covered multiset (the ingested stream minus the at-most-B
      buffered items) — probed at the first, middle, and last batch to
      keep the brute-force oracle affordable;
    * after a final ``sync()`` the global state equals the reference
      fold: state-bytes-identical for ``STALENESS_SYNC_EXACT``,
      envelope-bounded otherwise.
    """
    stale_b, threads = _staleness_params(plan)
    op = spec.build()
    ingestor = ConcurrentIngestor(
        {spec.name: op},
        buffer_items=stale_b,
        threads=threads,
        backend=SerialBackend(),
        record_flushes=True,
    )
    out: list[Violation] = []
    batches = _batches(stream, plan.batch_size)
    probe_at = {0, len(batches) // 2, len(batches) - 1}
    for i, batch in enumerate(batches):
        ingestor.ingest(batch)
        pending = ingestor.pending_items()
        lag = ingestor.items_ingested - ingestor.published_items
        if pending > stale_b:
            out.append(
                Violation(
                    "staleness",
                    f"batch {i}: {pending} unflushed items exceed B={stale_b}",
                )
            )
        if lag > stale_b:
            out.append(
                Violation(
                    "staleness",
                    f"batch {i}: snapshot lags ingest by {lag} items "
                    f"(> B={stale_b})",
                )
            )
        snap = ingestor.read()
        covered = ingestor.flushed_stream()
        if snap.items != len(covered):
            out.append(
                Violation(
                    "staleness",
                    f"batch {i}: snapshot claims {snap.items} items but "
                    f"the flush log holds {len(covered)}",
                )
            )
        if i in probe_at and len(covered):
            out += [
                Violation("staleness", f"batch {i} snapshot: {msg}")
                for msg in check_oracle(spec, snap[spec.name], covered, plan)
            ]
    ingestor.sync()
    ingestor.close()
    if spec.name in STALENESS_SYNC_EXACT:
        return out + _compare(
            spec, "staleness", reference, _Run.of(op), state_exact=True
        )
    return out + _envelope(spec, "staleness", op, stream, plan)


def run_case(
    spec,
    plan: ScenarioPlan,
    stream: np.ndarray,
    *,
    relations: frozenset[str] | set[str] | None = None,
) -> list[Violation]:
    """Run every relation the spec's capabilities select; returns all
    violations found (empty = the case passed).

    ``relations`` narrows the sweep to the named subset (values from
    :data:`RELATIONS`) — capability gating still applies, so asking for
    ``staleness`` on a non-concurrent operator runs nothing.
    """
    if len(stream) == 0:
        return []
    if relations is not None:
        unknown = set(relations) - set(RELATIONS)
        if unknown:
            raise ValueError(
                f"unknown relations {sorted(unknown)}; valid: {RELATIONS}"
            )

    def want(name: str) -> bool:
        return relations is None or name in relations

    reference_op = spec.build()
    for batch in _batches(stream, plan.batch_size):
        reference_op.ingest(batch)
    # Snapshot canonical state before the oracle phase probes anything.
    reference = _Run.of(reference_op)

    violations: list[Violation] = []
    if want("oracle"):
        violations += _envelope(spec, "oracle", reference_op, stream, plan)
    if want("rebatch"):
        violations += _relation_rebatch(spec, plan, stream, reference)
    if spec.caps.preparable and want("prepared"):
        violations += _relation_prepared(spec, plan, stream, reference)
    if spec.caps.fused and want("fused"):
        violations += _relation_fused(spec, plan, stream, reference)
    if spec.caps.mergeable:
        if want("mergetree"):
            violations += _relation_mergetree(spec, plan, stream, reference)
        if want("reshard"):
            violations += _relation_reshard(spec, plan, stream, reference)
    if spec.caps.concurrent and want("staleness"):
        violations += _relation_staleness(spec, plan, stream, reference)
    if hasattr(reference_op, "state_dict") and want("checkpoint"):
        violations += _relation_checkpoint(spec, plan, stream)
    if plan.faults.any() and want("faults"):
        violations += _relation_faults(spec, plan, stream)
    return violations
