"""Greedy deterministic shrinking of failing fuzz cases.

A failing (plan, stream) pair is reduced by repeatedly trying the
named steps in :data:`repro.fuzz.plan.SHRINK_STEPS` order and keeping
the first one that still fails — classic greedy delta debugging, but
over *named deterministic steps* instead of arbitrary subsets.  That
restriction is what makes replay exact: the accepted step names are
appended to the plan's ``shrink`` tuple and travel inside the
seed-spec, so ``repro fuzz --replay`` regenerates the original stream
from the seed pair and re-applies the same steps bit-for-bit — no
stream payload needs to be trusted (the artifact embeds one anyway,
for eyeballing).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from .differential import Violation, run_case
from .plan import SHRINK_STEPS, ScenarioPlan, apply_shrink_step

__all__ = ["shrink_case", "replay_shrink"]


def shrink_case(
    spec,
    plan: ScenarioPlan,
    stream: np.ndarray,
    *,
    max_evals: int = 64,
    run: Callable[..., list[Violation]] = run_case,
) -> tuple[ScenarioPlan, np.ndarray, list[Violation]]:
    """Shrink a failing case to a locally-minimal one.

    Returns ``(plan, stream, violations)`` where the plan's ``shrink``
    field records the accepted steps and ``violations`` is the failure
    the minimal case still exhibits.  ``max_evals`` bounds the number
    of candidate re-executions, so shrinking cannot dominate a fuzz
    session's time budget.
    """
    violations = run(spec, plan, stream)
    if not violations:
        return plan, stream, violations
    accepted: list[str] = []
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        for step in SHRINK_STEPS:
            candidate = apply_shrink_step(plan, stream, step)
            if candidate is None:
                continue
            cand_plan, cand_stream = candidate
            evals += 1
            cand_violations = run(spec, cand_plan, cand_stream)
            if cand_violations:
                plan, stream = cand_plan, cand_stream
                violations = cand_violations
                accepted.append(step)
                progress = True
                break
            if evals >= max_evals:
                break
    return replace(plan, shrink=tuple(plan.shrink) + tuple(accepted)), stream, violations


def replay_shrink(
    plan: ScenarioPlan, stream: np.ndarray
) -> tuple[ScenarioPlan, np.ndarray]:
    """Re-apply a plan's recorded shrink steps to the freshly
    regenerated stream — the replay side of :func:`shrink_case`."""
    steps = tuple(plan.shrink)
    current = replace(plan, shrink=())
    for step in steps:
        applied = apply_shrink_step(current, stream, step)
        if applied is None:
            raise ValueError(
                f"shrink step {step!r} no longer applies while replaying "
                f"{plan.op} case {plan.case} — seed-spec and generator "
                "disagree (stale seed-spec?)"
            )
        current, stream = applied
    return replace(current, shrink=steps), stream
