"""Deterministic stream synthesis for fuzz scenario plans.

Every stream is a pure function of the plan's ``(root_seed, case)``
pair (through ``default_rng([root_seed, case, _STREAM_KEY])``) and the
plan's shape fields — re-synthesizing from the seed-spec reproduces the
exact array the failing run saw.

The generators themselves come from :mod:`repro.stream.generators`;
this module only *parameterizes* them adversarially: window-aligned
burst periods, dense-universe churn, the spread-out heavy hitter of
Lemma 5.10 (folded into the plan's bounded universe so value-bounded
operators stay in domain), and bit streams that sweep the geometric
SBBC ladder.
"""

from __future__ import annotations

import numpy as np

from repro.stream.generators import (
    bit_stream,
    bursty_bit_stream,
    bursty_stream,
    uniform_stream,
    zipf_stream,
)

from .plan import ScenarioPlan

__all__ = ["synthesize_stream"]

#: Extra word appended to the rng seed so stream draws are independent
#: of the plan-field draws made from the same (root_seed, case) pair.
_STREAM_KEY = 7


def _window_of(spec) -> int | None:
    """The operator's window length, when it has one (drives the
    window-boundary-aligned burst scenarios)."""
    if not spec.caps.windowed:
        return None
    return int(getattr(spec.build(), "window", 0)) or None


def synthesize_stream(spec, plan: ScenarioPlan) -> np.ndarray:
    """Materialize the plan's stream: int64 items in ``[0, universe)``
    or 0/1 bits, per the spec's declared input kind."""
    rng = np.random.default_rng([plan.root_seed, plan.case, _STREAM_KEY])
    n, universe = plan.n, plan.universe
    window = _window_of(spec)

    if spec.input == "bits":
        if plan.kind == "dense":
            return bit_stream(n, density=float(rng.uniform(0.5, 1.0)), rng=rng)
        if plan.kind == "sparse":
            return bit_stream(n, density=float(rng.uniform(0.0, 0.2)), rng=rng)
        if plan.kind == "bursty":
            period = window or int(rng.integers(8, 129))
            return bursty_bit_stream(
                n,
                low=float(rng.uniform(0.0, 0.1)),
                high=float(rng.uniform(0.7, 1.0)),
                period=period,
                duty=float(rng.uniform(0.1, 0.6)),
                rng=rng,
            )
        if plan.kind == "runs":
            # Long alternating all-0/all-1 runs: worst case for block
            # boundaries (every run flip lands mid-block somewhere).
            run = int(rng.integers(1, max(2, (window or 64))))
            phase = int(rng.integers(0, 2))
            bits = (np.arange(n) // run + phase) % 2
            return bits.astype(np.int64)
        raise ValueError(f"unknown bit scenario kind {plan.kind!r}")

    if plan.kind == "zipf":
        return zipf_stream(n, universe, plan.alpha, rng=rng)
    if plan.kind == "uniform":
        return uniform_stream(n, universe, rng=rng)
    if plan.kind == "sawtooth":
        # Deterministic cyclic sweep through the universe with a drawn
        # stride — every item equally frequent, maximal order churn.
        stride = int(rng.integers(1, universe)) if universe > 1 else 1
        return ((np.arange(n, dtype=np.int64) * stride) % universe).astype(np.int64)
    if plan.kind == "burst":
        # Solid bursts of one hot item, aligned to the operator's window
        # boundary when it has one — the swing that stresses expiry.
        period = window or int(rng.integers(16, 257))
        period = min(period, max(2, n))
        burst_len = int(rng.integers(1, period + 1))
        return bursty_stream(
            n, universe, burst_item=0, burst_len=burst_len, period=period, rng=rng
        )
    if plan.kind == "adversarial":
        # Lemma 5.10's spread-out heavy hitter over near-unique filler;
        # folded into the bounded universe so value-capped operators
        # stay in domain (the hidden item keeps its even spacing).
        occurrences = max(1, int(np.ceil(0.06 * n)))
        filler = rng.permutation(n).astype(np.int64) % universe
        positions = np.linspace(0, n - 1, occurrences).astype(np.int64)
        filler[positions] = int(rng.integers(0, universe))
        return filler
    if plan.kind == "churn":
        # Every id roughly once per universe-cycle, randomly ordered:
        # nonstop insert/evict pressure on capacity-bounded summaries.
        return (rng.permutation(n).astype(np.int64)) % universe
    raise ValueError(f"unknown item scenario kind {plan.kind!r}")
