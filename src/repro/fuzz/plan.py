"""Reproducible fuzz scenario plans and the seed-spec codec.

A :class:`ScenarioPlan` is the *entire* description of one fuzz case:
which operator, what stream shape (skew kind, length, universe,
batching), which fault schedule the resilient-driver relation injects
(first-class plan fields, drawn from the same root seed), where the
mid-stream checkpoint probe fires, and the merge-tree geometry.  Every
field is drawn from ``default_rng([root_seed, case])``, so the pair
``(root_seed, case)`` regenerates the case bit-identically on any
machine — which is what makes the one-line replay command possible:

    repro fuzz --replay 'fuzz/v1:op=MisraGriesSummary:seed=5:case=17'

Shrinking (:mod:`repro.fuzz.shrink`) never invents data: it only
applies named deterministic *steps* to the generated (plan, stream)
pair, and the accepted step names ride along in the seed-spec
(``:shrink=front.nofaults``), so a shrunk case replays bit-identically
too.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

__all__ = [
    "FaultPlan",
    "ScenarioPlan",
    "SEED_SPEC_PREFIX",
    "ITEM_KINDS",
    "BIT_KINDS",
    "SHRINK_STEPS",
    "generate_plan",
    "format_seed_spec",
    "parse_seed_spec",
    "apply_shrink_step",
]

#: Version tag every seed-spec (and fuzzcase artifact) leads with.
SEED_SPEC_PREFIX = "fuzz/v1"

#: Stream shapes for item-input operators.  ``churn`` cycles fresh ids
#: through the universe (maximal eviction pressure — the insert-only
#: analogue of a deletion-heavy workload), ``adversarial`` spreads the
#: lone heavy hitter evenly (the Lemma 5.10 pattern), ``burst`` aligns
#: its solid bursts with the operator's window boundary when it has one.
ITEM_KINDS = ("zipf", "uniform", "sawtooth", "burst", "adversarial", "churn")

#: Stream shapes for bit-input operators.
BIT_KINDS = ("dense", "sparse", "bursty", "runs")

#: Shrink steps, in the order the shrinker tries them.  Each is a pure
#: function of the current (plan, stream) — see :func:`apply_shrink_step`.
SHRINK_STEPS = (
    "front",     # keep the first half of the stream
    "back",      # keep the second half
    "head",      # drop the first quarter
    "tail",      # drop the last quarter
    "nofaults",  # zero the fault schedule
    "nockpt",    # move the checkpoint probe to batch 0
    "batch",     # halve the minibatch size
    "shards",    # collapse merge-tree geometry to 2 shards / arity 2
)


@dataclass(frozen=True)
class FaultPlan:
    """Per-batch fault probabilities for the resilient-driver relation.

    Crash is deliberately absent: a fuzz case must run to completion so
    its relations can be checked (crash/recovery has its own benchmark,
    R1).  Rates are first-class plan fields so a failing fault schedule
    shrinks and replays like any other scenario dimension.
    """

    duplicate: float = 0.0
    reorder: float = 0.0
    truncate: float = 0.0
    poison: float = 0.0
    transient: float = 0.0

    def any(self) -> bool:
        return any(
            r > 0 for r in (
                self.duplicate, self.reorder, self.truncate,
                self.poison, self.transient,
            )
        )

    def to_dict(self) -> dict[str, float]:
        return {
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "truncate": self.truncate,
            "poison": self.poison,
            "transient": self.transient,
        }


@dataclass(frozen=True)
class ScenarioPlan:
    """One fully-determined fuzz case (see module docstring)."""

    op: str
    root_seed: int
    case: int
    kind: str
    n: int
    universe: int
    alpha: float
    batch_size: int
    faults: FaultPlan = field(default_factory=FaultPlan)
    fault_seed: int = 0
    checkpoint_at: int = 0
    shards: int = 2
    arity: int = 2
    shrink: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "root_seed": self.root_seed,
            "case": self.case,
            "kind": self.kind,
            "n": self.n,
            "universe": self.universe,
            "alpha": self.alpha,
            "batch_size": self.batch_size,
            "faults": self.faults.to_dict(),
            "fault_seed": self.fault_seed,
            "checkpoint_at": self.checkpoint_at,
            "shards": self.shards,
            "arity": self.arity,
            "shrink": list(self.shrink),
        }


#: Item universes are capped so every generated value is legal for the
#: registry build: the dyadic stack is built with universe_bits=8, and
#: the value-bounded windowed reductions accept values < 512
#: (max_value=511 / histogram edges ending at 512).
_UNIVERSE_CAP = {"DyadicCountMin": 256}
_DEFAULT_UNIVERSE_CAP = 512


def generate_plan(spec, root_seed: int, case: int) -> ScenarioPlan:
    """Draw one scenario plan from ``default_rng([root_seed, case])``.

    Depends only on the seed pair and the spec's name/input kind, never
    on encounter order — the determinism the replay command rests on.
    """
    rng = np.random.default_rng([int(root_seed), int(case)])
    kinds = BIT_KINDS if spec.input == "bits" else ITEM_KINDS
    kind = str(kinds[int(rng.integers(0, len(kinds)))])
    n = int(2 ** rng.uniform(5.0, 10.5))  # 32 .. ~1448 items
    cap = _UNIVERSE_CAP.get(spec.name, _DEFAULT_UNIVERSE_CAP)
    universe = int(rng.integers(8, cap + 1))
    alpha = float(rng.uniform(0.8, 2.0))
    batch_size = int(2 ** rng.integers(2, 8))  # 4 .. 128
    if rng.random() < 0.5:
        faults = FaultPlan()
    else:
        # Low per-kind rates keep the effective stream non-degenerate
        # (heavy truncation would mostly fuzz the empty stream).
        faults = FaultPlan(
            duplicate=float(rng.choice([0.0, 0.1])),
            reorder=float(rng.choice([0.0, 0.1])),
            truncate=float(rng.choice([0.0, 0.05])),
            poison=float(rng.choice([0.0, 0.05])),
            transient=float(rng.choice([0.0, 0.1])),
        )
    fault_seed = int(rng.integers(0, 2**31))
    nbatches = max(1, -(-n // batch_size))
    checkpoint_at = int(rng.integers(0, nbatches))
    shards = int(rng.integers(2, 7))
    arity = int(rng.integers(2, 5))
    return ScenarioPlan(
        op=spec.name,
        root_seed=int(root_seed),
        case=int(case),
        kind=kind,
        n=n,
        universe=universe,
        alpha=alpha,
        batch_size=batch_size,
        faults=faults,
        fault_seed=fault_seed,
        checkpoint_at=checkpoint_at,
        shards=shards,
        arity=arity,
    )


# ----------------------------------------------------------------------
# Seed-spec codec: fuzz/v1:op=NAME:seed=S:case=C[:shrink=a.b.c]
# ----------------------------------------------------------------------
def format_seed_spec(plan: ScenarioPlan) -> str:
    spec = f"{SEED_SPEC_PREFIX}:op={plan.op}:seed={plan.root_seed}:case={plan.case}"
    if plan.shrink:
        spec += f":shrink={'.'.join(plan.shrink)}"
    return spec


def parse_seed_spec(text: str) -> tuple[str, int, int, tuple[str, ...]]:
    """Decode a seed-spec into ``(op, root_seed, case, shrink_steps)``.

    Raises :class:`ValueError` with the expected grammar on any
    malformed input, so the CLI surfaces an actionable message.
    """
    grammar = (
        f"expected '{SEED_SPEC_PREFIX}:op=NAME:seed=S:case=C[:shrink=a.b.c]'"
    )
    parts = str(text).strip().split(":")
    if not parts or parts[0] != SEED_SPEC_PREFIX:
        raise ValueError(f"bad seed-spec {text!r}: {grammar}")
    fields: dict[str, str] = {}
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        if not sep or key in fields:
            raise ValueError(f"bad seed-spec {text!r}: {grammar}")
        fields[key] = value
    missing = {"op", "seed", "case"} - fields.keys()
    unknown = fields.keys() - {"op", "seed", "case", "shrink"}
    if missing or unknown:
        raise ValueError(f"bad seed-spec {text!r}: {grammar}")
    try:
        seed, case = int(fields["seed"]), int(fields["case"])
    except ValueError:
        raise ValueError(
            f"bad seed-spec {text!r}: seed and case must be integers"
        ) from None
    shrink = tuple(s for s in fields.get("shrink", "").split(".") if s)
    for step in shrink:
        if step not in SHRINK_STEPS:
            raise ValueError(
                f"bad seed-spec {text!r}: unknown shrink step {step!r}; "
                f"known: {', '.join(SHRINK_STEPS)}"
            )
    return fields["op"], seed, case, shrink


# ----------------------------------------------------------------------
# Shrink steps
# ----------------------------------------------------------------------
_MIN_STREAM = 4


def apply_shrink_step(
    plan: ScenarioPlan, stream: np.ndarray, step: str
) -> tuple[ScenarioPlan, np.ndarray] | None:
    """Apply one named shrink step; ``None`` when it is inapplicable
    (would shrink below the floor, or would change nothing)."""
    n = len(stream)
    if step == "front":
        if n // 2 < _MIN_STREAM:
            return None
        return plan, stream[: n // 2]
    if step == "back":
        if n - n // 2 < _MIN_STREAM or n // 2 == 0:
            return None
        return plan, stream[n // 2 :]
    if step == "head":
        if n - n // 4 < _MIN_STREAM or n // 4 == 0:
            return None
        return plan, stream[n // 4 :]
    if step == "tail":
        if n - n // 4 < _MIN_STREAM or n // 4 == 0:
            return None
        return plan, stream[: n - n // 4]
    if step == "nofaults":
        if not plan.faults.any():
            return None
        return replace(plan, faults=FaultPlan()), stream
    if step == "nockpt":
        if plan.checkpoint_at == 0:
            return None
        return replace(plan, checkpoint_at=0), stream
    if step == "batch":
        if plan.batch_size < 2:
            return None
        return replace(plan, batch_size=plan.batch_size // 2), stream
    if step == "shards":
        if plan.shards == 2 and plan.arity == 2:
            return None
        return replace(plan, shards=2, arity=2), stream
    raise ValueError(f"unknown shrink step {step!r}; known: {', '.join(SHRINK_STEPS)}")
