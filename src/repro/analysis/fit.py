"""Scaling-law fits for benchmark sweeps.

The theorems claim asymptotic shapes (linear work, logarithmic space
growth, polylog depth).  :func:`fit_loglog_slope` estimates the
exponent b of a power law y ≈ a·x^b from sweep data; a measured slope
≈ 1 confirms linear work, ≈ 0 confirms flat cost, etc.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fit_loglog_slope", "linear_r2"]


def fit_loglog_slope(xs, ys) -> float:
    """Least-squares slope of log y vs log x (the power-law exponent).

    Requires >= 2 strictly positive points.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size != ys.size or xs.size < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValueError("log-log fit needs strictly positive data")
    slope, _intercept = np.polyfit(np.log(xs), np.log(ys), 1)
    return float(slope)


def linear_r2(xs, ys) -> float:
    """R² of the best linear fit y ≈ a·x + b (goodness of linearity)."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size != ys.size or xs.size < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    coeffs = np.polyfit(xs, ys, 1)
    predicted = np.polyval(coeffs, xs)
    ss_res = float(((ys - predicted) ** 2).sum())
    ss_tot = float(((ys - ys.mean()) ** 2).sum())
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot
