"""Theory-vs-measurement helpers: closed-form bounds per theorem,
log-log scaling fits, and plain-text table formatting for the
benchmark harness and EXPERIMENTS.md."""

from repro.analysis.bounds import (
    basic_counting_space_bound,
    basic_counting_work_bound,
    buildhist_work_bound,
    cms_space_bound,
    cms_work_bound,
    freq_infinite_work_bound,
    freq_sliding_work_bound,
    independent_memory_bound,
    sbbc_advance_work_bound,
    sbbc_space_bound,
    sum_space_bound,
    sum_work_bound,
)
from repro.analysis.fit import fit_loglog_slope, linear_r2
from repro.analysis.report import format_table, markdown_table
from repro.analysis.validate import (
    AuditReport,
    audit_basic_counting,
    audit_cms,
    audit_frequency_estimator,
    audit_heavy_hitters,
    audit_windowed_sum,
)

__all__ = [
    "basic_counting_space_bound",
    "basic_counting_work_bound",
    "buildhist_work_bound",
    "cms_space_bound",
    "cms_work_bound",
    "freq_infinite_work_bound",
    "freq_sliding_work_bound",
    "independent_memory_bound",
    "sbbc_advance_work_bound",
    "sbbc_space_bound",
    "sum_space_bound",
    "sum_work_bound",
    "fit_loglog_slope",
    "linear_r2",
    "format_table",
    "markdown_table",
    "AuditReport",
    "audit_basic_counting",
    "audit_cms",
    "audit_frequency_estimator",
    "audit_heavy_hitters",
    "audit_windowed_sum",
]
