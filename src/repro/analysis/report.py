"""Plain-text and Markdown table formatting for the benchmark harness.

Every benchmark prints a table of (sweep parameter → measured cost /
bound / max error) rows; EXPERIMENTS.md embeds the Markdown variants.
No external tabulation dependency — columns are right-aligned, floats
formatted compactly.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_cell", "format_table", "markdown_table"]


def format_cell(value: Any, float_digits: int = 4) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.{float_digits}g}"
    return str(value)


def _stringify(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> list[list[str]]:
    table = [[format_cell(v) for v in row] for row in rows]
    for row in table:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    return table


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Right-aligned fixed-width text table (for benchmark stdout)."""
    cells = _stringify(headers, rows)
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavored Markdown table (for EXPERIMENTS.md)."""
    cells = _stringify(headers, rows)
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in cells:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
