"""Closed-form theoretical cost bounds, one per theorem.

Each function returns the *un-constant-factored* bound expression the
corresponding theorem proves.  Benchmarks divide measured cost by the
bound; a flat (bounded) ratio across a parameter sweep is the
reproduction criterion ("shape, not absolute numbers").
"""

from __future__ import annotations

import math

__all__ = [
    "sbbc_space_bound",
    "sbbc_advance_work_bound",
    "basic_counting_space_bound",
    "basic_counting_work_bound",
    "sum_space_bound",
    "sum_work_bound",
    "buildhist_work_bound",
    "freq_infinite_work_bound",
    "freq_sliding_work_bound",
    "cms_space_bound",
    "cms_work_bound",
    "independent_memory_bound",
]


def sbbc_space_bound(sigma: float, m: int, lam: float) -> float:
    """Theorem 3.4: space O(min(σ, m/λ))."""
    return max(1.0, min(sigma, m / lam))


def sbbc_advance_work_bound(sigma: float, m: int, lam: float, batch_len: int) -> float:
    """Theorem 3.4: advance work O(min(σ, m/λ) + |T|/λ)."""
    return max(1.0, min(sigma, m / lam) + batch_len / lam)


def basic_counting_space_bound(eps: float, window: int) -> float:
    """Theorem 4.1: S = O(ε⁻¹ log n)."""
    return max(1.0, math.log2(max(2, window)) / eps)


def basic_counting_work_bound(eps: float, window: int, batch_len: int) -> float:
    """Theorem 4.1: minibatch work O(S + µ)."""
    return basic_counting_space_bound(eps, window) + batch_len


def sum_space_bound(eps: float, window: int, max_value: int) -> float:
    """Theorem 4.2: O(ε⁻¹ log n log R)."""
    return basic_counting_space_bound(eps, window) * max(
        1.0, math.log2(max(2, max_value))
    )


def sum_work_bound(eps: float, window: int, max_value: int, batch_len: int) -> float:
    """Theorem 4.2: O((S + µ) log R)."""
    return basic_counting_work_bound(eps, window, batch_len) * max(
        1.0, math.log2(max(2, max_value))
    )


def buildhist_work_bound(batch_len: int) -> float:
    """Theorem 2.3: expected O(µ)."""
    return max(1.0, float(batch_len))


def freq_infinite_work_bound(eps: float, batch_len: int) -> float:
    """Theorem 5.2: O(ε⁻¹ + µ)."""
    return 1.0 / eps + batch_len


def freq_sliding_work_bound(
    eps: float, batch_len: int, *, variant: str = "work_efficient"
) -> float:
    """Theorems 5.4 / 5.5 / 5.8.

    ``work_efficient`` → O(ε⁻¹ + µ);
    ``basic`` / ``space_efficient`` → O(ε⁻¹ + µ log µ).
    """
    if variant == "work_efficient":
        return 1.0 / eps + batch_len
    if variant in ("basic", "space_efficient"):
        return 1.0 / eps + batch_len * max(1.0, math.log2(max(2, batch_len)))
    raise ValueError(f"unknown variant {variant!r}")


def cms_space_bound(eps: float, delta: float) -> float:
    """Theorem 6.1: O(ε⁻¹ log(1/δ))."""
    return max(1.0, math.log(1.0 / delta)) / eps


def cms_work_bound(eps: float, delta: float, batch_len: int) -> float:
    """Theorem 6.1: O(log(1/δ) · max(µ, 1/ε))."""
    return max(1.0, math.log(1.0 / delta)) * max(batch_len, 1.0 / eps)


def independent_memory_bound(processors: int, eps: float) -> float:
    """§5.4: the independent-DS approach uses Θ(p/ε) memory."""
    return max(1.0, processors / eps)
