"""Accuracy audits: run an estimator against an exact oracle over a
stream and report guarantee violations.

The benchmarks assert guarantee *shapes* inline; this module packages
the same checks as a reusable API so downstream users can audit their
own parameter choices and workloads (e.g. "is ε = 0.01 actually enough
for my traffic?") without hand-writing the bookkeeping.

Each audit returns an :class:`AuditReport` with per-checkpoint maximum
errors and the violation count against the structure's contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.stream.generators import minibatches
from repro.stream.oracle import (
    ExactInfiniteFrequencies,
    ExactWindowCounter,
    ExactWindowFrequencies,
    ExactWindowSum,
)

__all__ = [
    "AuditReport",
    "audit_basic_counting",
    "audit_windowed_sum",
    "audit_frequency_estimator",
    "audit_heavy_hitters",
    "audit_cms",
]


@dataclass
class AuditReport:
    """Outcome of one audit run."""

    checkpoints: int
    violations: int
    max_error: float
    error_budget: float
    details: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else f"{self.violations} VIOLATIONS"
        return (
            f"AuditReport({status}: max error {self.max_error:g} vs budget "
            f"{self.error_budget:g} over {self.checkpoints} checkpoints)"
        )


def _run(
    stream: np.ndarray,
    batch_size: int,
    step: Callable[[np.ndarray], None],
    check: Callable[[], tuple[float, float, str | None]],
) -> AuditReport:
    checkpoints = violations = 0
    max_error = 0.0
    budget = 0.0
    details: list[str] = []
    for chunk in minibatches(np.asarray(stream), batch_size):
        step(chunk)
        error, budget, detail = check()
        checkpoints += 1
        max_error = max(max_error, error)
        if detail is not None:
            violations += 1
            if len(details) < 20:
                details.append(detail)
    return AuditReport(
        checkpoints=checkpoints,
        violations=violations,
        max_error=max_error,
        error_budget=budget,
        details=details,
    )


def audit_basic_counting(
    counter, bits: np.ndarray, batch_size: int = 1024
) -> AuditReport:
    """Check ``m <= query() <= (1+eps)·m`` after every minibatch."""
    oracle = ExactWindowCounter(counter.window)

    def step(chunk: np.ndarray) -> None:
        counter.ingest(chunk)
        oracle.extend(chunk)

    def check():
        m = oracle.query()
        estimate = counter.query()
        rel = (estimate - m) / m if m else 0.0
        bad = None
        if estimate < m or rel > counter.eps:
            bad = f"t={oracle.t}: m={m} est={estimate}"
        return rel, counter.eps, bad

    return _run(bits, batch_size, step, check)


def audit_windowed_sum(
    summer, values: np.ndarray, batch_size: int = 1024
) -> AuditReport:
    """Check ``true <= query() <= (1+eps)·true`` after every minibatch."""
    oracle = ExactWindowSum(summer.window)

    def step(chunk: np.ndarray) -> None:
        summer.ingest(chunk)
        oracle.extend(chunk)

    def check():
        true = oracle.query()
        estimate = summer.query()
        rel = (estimate - true) / true if true else 0.0
        bad = None
        if estimate < true or rel > summer.eps:
            bad = f"t={oracle.t}: true={true} est={estimate}"
        return rel, summer.eps, bad

    return _run(values, batch_size, step, check)


def audit_frequency_estimator(
    estimator,
    stream: np.ndarray,
    probes: Sequence[Hashable],
    batch_size: int = 1024,
    *,
    window: int | None = None,
) -> AuditReport:
    """Check the MG bracket on ``probes`` after every minibatch.

    Infinite window (``window=None``): f − εm <= est <= f.
    Sliding window: f − εn <= est <= f, with f the windowed count.
    """
    oracle = (
        ExactInfiniteFrequencies() if window is None else ExactWindowFrequencies(window)
    )

    def step(chunk: np.ndarray) -> None:
        estimator.ingest(chunk)
        oracle.extend(chunk)

    def check():
        slack = (
            estimator.eps * oracle.t
            if window is None
            else estimator.eps * window
        )
        worst = 0.0
        bad = None
        for item in probes:
            f = oracle.frequency(item)
            estimate = estimator.estimate(item)
            worst = max(worst, f - estimate)
            if estimate > f + 1e-9 or estimate < f - slack - 1e-9:
                bad = f"item={item}: f={f} est={estimate} slack={slack:g}"
        return worst, slack, bad

    return _run(stream, batch_size, step, check)


def audit_heavy_hitters(
    tracker,
    stream: np.ndarray,
    batch_size: int = 1024,
    *,
    window: int | None = None,
) -> AuditReport:
    """Check the two-sided heavy-hitter contract at every checkpoint:
    no true φ-heavy item missing; nothing below the paper's floor."""
    oracle = (
        ExactInfiniteFrequencies() if window is None else ExactWindowFrequencies(window)
    )

    def step(chunk: np.ndarray) -> None:
        tracker.ingest(chunk)
        oracle.extend(chunk)

    def check():
        reported = tracker.query()
        true_hh = set(oracle.heavy_hitters(tracker.phi))
        missed = true_hh - set(reported)
        n_or_t = oracle.t if window is None else window
        floor = (tracker.phi - tracker.eps) * (
            oracle.t if window is None else min(oracle.t, window)
        ) - (0 if window is None else tracker.eps * window)
        spurious = {
            e for e in reported if oracle.frequency(e) < max(0.0, floor) - 1e-9
        }
        bad = None
        if missed or spurious:
            bad = f"t={oracle.t}: missed={sorted(missed)} spurious={sorted(spurious)}"
        return float(len(missed) + len(spurious)), 0.0, bad

    return _run(stream, batch_size, step, check)


def audit_cms(
    sketch,
    stream: np.ndarray,
    probes: Sequence[Hashable],
    batch_size: int = 1024,
) -> AuditReport:
    """Check CMS one-sidedness at every checkpoint and count εm
    overcounts at the end (they may legitimately occur at rate ~δ, so
    only undercounts are violations)."""
    oracle = ExactInfiniteFrequencies()

    def step(chunk: np.ndarray) -> None:
        sketch.ingest(chunk)
        oracle.extend(chunk)

    def check():
        budget = sketch.eps * oracle.t
        worst_over = 0.0
        bad = None
        for item in probes:
            f = oracle.frequency(item)
            estimate = sketch.point_query(item)
            worst_over = max(worst_over, estimate - f)
            if estimate < f:
                bad = f"item={item}: UNDERCOUNT f={f} est={estimate}"
        return worst_over, budget, bad

    return _run(stream, batch_size, step, check)
