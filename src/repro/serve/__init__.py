"""repro.serve — the multi-tenant asyncio streaming front-end.

Each tenant owns a registry-built operator set behind a bounded ingest
queue and a :class:`~repro.stream.minibatch.MinibatchDriver`; queries
are answered from double-buffered, epoch-stamped snapshots published on
batch boundaries, so reads are snapshot-consistent while ingest keeps
running.  See docs/serving.md for the architecture and the ``serve/v1``
wire protocol.
"""

from repro.serve.client import LineClient
from repro.serve.protocol import (
    LINE_LIMIT,
    PROTOCOL_VERSION,
    ProtocolError,
    parse_request,
    parse_response,
)
from repro.serve.quota import AdmissionController, AdmissionError, TokenBucket
from repro.serve.server import ServeConfig, StreamServer
from repro.serve.session import DrainReport, TenantSession
from repro.serve.snapshot import Snapshot, SnapshotStore

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "DrainReport",
    "LINE_LIMIT",
    "LineClient",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeConfig",
    "Snapshot",
    "SnapshotStore",
    "StreamServer",
    "TenantSession",
    "TokenBucket",
    "parse_request",
    "parse_response",
]
