"""The asyncio multi-tenant streaming server (docs/serving.md).

``StreamServer`` accepts ``serve/v1`` line-protocol connections
(:mod:`repro.serve.protocol`) and routes each one to a
:class:`~repro.serve.session.TenantSession`:

* **admission control** — the first ``HELLO`` of a new tenant passes
  through an :class:`~repro.serve.quota.AdmissionController`; at
  ``max_tenants`` the session is refused with ``ERR admission`` and
  nothing is allocated.  Reconnects and extra connections for a live
  tenant attach to its existing session (they share the quota bucket,
  queue, and snapshots).
* **ingest** — ``INGEST`` submissions run the session's quota throttle
  and high-watermark backpressure *inside the connection's read loop*,
  so an over-rate or over-depth tenant simply stops being read from —
  the kernel's TCP flow control pushes the slowdown back to the client
  without a single in-band drop.
* **queries during ingest** — ``QUERY`` answers from the latest
  published snapshot; it costs one epoch-stamped probe and never takes
  a lock the ingest path can hold.
* **graceful drain** — :meth:`drain` stops accepting, pumps every
  session's queue dry, publishes final epochs, writes per-tenant
  checkpoints when a checkpoint directory is configured, and returns
  one :class:`~repro.serve.session.DrainReport` per tenant.  The CI
  smoke test asserts every report is ``clean`` (items folded, DLQ
  empty).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.engine import registry
from repro.observability.metrics import REGISTRY
from repro.resilience.checkpoint import CheckpointManager
from repro.serve.protocol import (
    LINE_LIMIT,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_err,
    encode_ok,
    parse_request,
)
from repro.serve.quota import AdmissionController, AdmissionError
from repro.serve.session import DrainReport, TenantSession

__all__ = ["ServeConfig", "StreamServer"]

# Server-level serve metrics (catalog: docs/observability.md).
_M_TENANTS = REGISTRY.gauge(
    "repro_serve_tenants", "Live tenant sessions on the streaming server"
)
_M_CONNECTIONS = REGISTRY.counter(
    "repro_serve_connections_total", "Client connections accepted"
)
_M_REJECTIONS = REGISTRY.counter(
    "repro_serve_rejections_total",
    "Requests refused, by reason (admission, unknown-op, protocol, ...)",
    labels=("reason",),
)
_M_DRAINS = REGISTRY.counter(
    "repro_serve_drains_total", "Tenant sessions drained to completion"
)


@dataclass
class ServeConfig:
    """Knobs for one :class:`StreamServer` (CLI: ``repro serve``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off .address
    max_tenants: int = 64
    #: Per-tenant items/sec quota; ``None`` disables throttling.
    quota_rate: float | None = None
    quota_burst: float | None = None
    queue_max: int = 64
    high_watermark: int | None = None
    batch_size: int = 4096
    #: Elastic shard count per tenant driver (mergeable operators only).
    shards: int | None = None
    #: Directory for drain-time checkpoints; ``None`` skips them.
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {self.max_tenants}")


class StreamServer:
    """Multi-tenant ingest/query front-end over asyncio streams."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.sessions: dict[str, TenantSession] = {}
        self.admission = AdmissionController(self.config.max_tenants)
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self.connections = 0

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — valid after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> "StreamServer":
        self._server = await asyncio.start_server(
            self._handle,
            self.config.host,
            self.config.port,
            limit=LINE_LIMIT,
        )
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------
    def _session_for(self, tenant: str, ops: list[str]) -> TenantSession:
        """Create-or-attach the tenant's session (admission on create)."""
        session = self.sessions.get(tenant)
        if session is not None:
            return session
        self.admission.admit(tenant)  # AdmissionError -> ERR admission
        try:
            manager = (
                CheckpointManager(
                    f"{self.config.checkpoint_dir}/{tenant}", every=1
                )
                if self.config.checkpoint_dir
                else None
            )
            session = TenantSession(
                tenant,
                ops,
                quota_rate=self.config.quota_rate,
                quota_burst=self.config.quota_burst,
                queue_max=self.config.queue_max,
                high_watermark=self.config.high_watermark,
                batch_size=self.config.batch_size,
                shards=self.config.shards,
                checkpoint_manager=manager,
            )
        except Exception:
            self.admission.release(tenant)
            raise
        session.start()
        self.sessions[tenant] = session
        _M_TENANTS.set(len(self.sessions))
        return session

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        _M_CONNECTIONS.inc()
        session: TenantSession | None = None
        try:
            while True:
                raw = await self._readline(reader, writer)
                if raw is None:
                    break
                if not raw.strip():
                    continue
                try:
                    request = parse_request(raw)
                except ProtocolError as exc:
                    _M_REJECTIONS.inc(reason="protocol")
                    writer.write(encode_err("protocol", str(exc)))
                    await writer.drain()
                    continue
                if request.verb == "QUIT":
                    writer.write(encode_ok({"bye": True}))
                    await writer.drain()
                    break
                session = await self._dispatch(request, session, reader, writer)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # client went away
            pass
        finally:
            if session is not None:
                session.connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _readline(self, reader, writer) -> str | None:
        """One line, or ``None`` on EOF; oversized lines are answered
        with ``ERR protocol`` and the connection dropped (the limit is
        the per-connection memory bound)."""
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            _M_REJECTIONS.inc(reason="protocol")
            writer.write(
                encode_err("protocol", f"line exceeds {LINE_LIMIT} bytes")
            )
            await writer.drain()
            return None
        if not raw:
            return None
        return raw.decode(errors="replace")

    async def _dispatch(
        self,
        request,
        session: TenantSession | None,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> TenantSession | None:
        verb, args = request.verb, request.args

        if verb == "PING":
            writer.write(encode_ok({"pong": True, "tenants": len(self.sessions)}))
            return session

        if verb == "OPS":
            catalog = [
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "input": spec.input,
                    "caps": spec.caps.flags(),
                    "probe": spec.probe_source(),
                }
                for spec in registry.servable()
            ]
            writer.write(encode_ok({"protocol": PROTOCOL_VERSION, "ops": catalog}))
            return session

        if verb == "HELLO":
            if self._draining:
                _M_REJECTIONS.inc(reason="draining")
                writer.write(encode_err("draining", "server is draining"))
                return session
            tenant, ops_arg = args
            ops = [name for name in ops_arg.split(",") if name]
            unknown = [n for n in ops if n not in registry.names()]
            not_servable = [
                n for n in ops
                if n not in unknown and not registry.get(n).servable
            ]
            if not ops or unknown or not_servable:
                _M_REJECTIONS.inc(reason="unknown-op")
                writer.write(
                    encode_err(
                        "unknown-op",
                        f"unknown={unknown} unservable={not_servable}"
                        if ops
                        else "HELLO needs at least one operator",
                    )
                )
                return session
            try:
                new_session = self._session_for(tenant, ops)
            except AdmissionError as exc:
                _M_REJECTIONS.inc(reason="admission")
                writer.write(encode_err("admission", str(exc)))
                return session
            if sorted(new_session.operators) != sorted(ops):
                _M_REJECTIONS.inc(reason="protocol")
                writer.write(
                    encode_err(
                        "protocol",
                        f"tenant {tenant!r} already owns "
                        f"{sorted(new_session.operators)}",
                    )
                )
                return session
            if session is not None and session is not new_session:
                session.connections -= 1
            new_session.connections += 1
            writer.write(
                encode_ok(
                    {
                        "protocol": PROTOCOL_VERSION,
                        "tenant": tenant,
                        "ops": sorted(new_session.operators),
                        "epoch": new_session.epoch,
                    }
                )
            )
            return new_session

        if verb == "STATS":
            if session is None:
                writer.write(
                    encode_ok(
                        {
                            "tenants": len(self.sessions),
                            "max_tenants": self.config.max_tenants,
                            "connections": self.connections,
                        }
                    )
                )
            else:
                writer.write(encode_ok(session.stats()))
            return session

        # Everything below requires an open session.
        if session is None:
            _M_REJECTIONS.inc(reason="no-session")
            writer.write(encode_err("no-session", f"{verb} before HELLO"))
            return session

        if verb == "INGEST":
            try:
                expected = int(args[0])
                if expected < 0:
                    raise ValueError
            except ValueError:
                _M_REJECTIONS.inc(reason="protocol")
                writer.write(encode_err("protocol", f"bad INGEST count {args[0]!r}"))
                return session
            payload = await self._readline(reader, writer)
            if payload is None:
                return session
            try:
                items = np.array(
                    [int(token) for token in payload.split()], dtype=np.int64
                )
            except ValueError:
                _M_REJECTIONS.inc(reason="protocol")
                writer.write(encode_err("protocol", "non-integer ingest payload"))
                return session
            if len(items) != expected:
                _M_REJECTIONS.inc(reason="protocol")
                writer.write(
                    encode_err(
                        "protocol",
                        f"INGEST announced {expected} items, got {len(items)}",
                    )
                )
                return session
            try:
                accepted = await session.submit(items)
            except RuntimeError as exc:  # draining
                _M_REJECTIONS.inc(reason="draining")
                writer.write(encode_err("draining", str(exc)))
                return session
            writer.write(
                encode_ok(
                    {
                        "accepted": accepted,
                        "epoch": session.epoch,
                        "queue_depth": session.queue.qsize(),
                    }
                )
            )
            return session

        if verb == "QUERY":
            try:
                epoch, result = session.query(args[0])
            except KeyError as exc:
                _M_REJECTIONS.inc(reason="unknown-op")
                writer.write(encode_err("unknown-op", exc.args[0]))
                return session
            writer.write(encode_ok({"op": args[0], "epoch": epoch, "result": result}))
            return session

        raise AssertionError(f"unhandled verb {verb}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> list[DrainReport]:
        """Graceful shutdown: stop accepting, drain every tenant
        session (queue dry → final epoch → checkpoint), release their
        admission slots, and return the per-tenant reports in tenant
        order."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        reports = []
        for tenant in sorted(self.sessions):
            report = await self.sessions[tenant].drain()
            self.admission.release(tenant)
            _M_DRAINS.inc()
            reports.append(report)
        self.sessions.clear()
        _M_TENANTS.set(0)
        return reports
