"""Snapshot-consistent reads: double-buffered state, epoch-stamped.

The merge algebra guarantees (docs/serving.md, [ACH+13]) that after any
processed minibatch the driver's operator state *is* the exact serial
fold of everything ingested so far — shard partials included, because
``MinibatchDriver.run`` folds them before returning.  That makes a
batch boundary the natural consistency point: copy each operator's
state there and any number of readers can query the copy while the live
operator ingests the next batch, with every answer attributable to one
well-defined stream prefix.

:class:`SnapshotStore` keeps **two** buffers per operator and
alternates publishes between them (classic double buffering): the front
buffer is what :meth:`read` hands out; a publish writes the live state
into the *back* buffer, swaps the roles, and bumps the **epoch**
counter.  Readers therefore never block the ingest path and the ingest
path never mutates an object a current-epoch reader holds.

A reader that may suspend (or run off-loop) between grabbing a snapshot
and finishing its query uses :meth:`query`, a seqlock-style helper: it
re-checks the epoch after the probe and retries when two or more
publishes landed mid-read (one publish is safe — it targets the other
buffer).  Pure in-loop readers can call :meth:`read` directly, since
asyncio's single thread means no publish can interleave with a
synchronous probe.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = ["Snapshot", "SnapshotStore"]


@dataclass(frozen=True)
class Snapshot:
    """One published consistency point: an epoch and the operator copies
    that hold the exact fold of the stream prefix at that epoch."""

    epoch: int
    operators: Mapping[str, Any]
    #: Items folded into the live operators when this epoch published.
    items: int

    def __contains__(self, name: str) -> bool:
        return name in self.operators

    def __getitem__(self, name: str) -> Any:
        return self.operators[name]


def _clone(op: Any) -> Any:
    """A state-carrying copy of ``op`` (buffer bootstrap)."""
    return pickle.loads(pickle.dumps(op))


class SnapshotStore:
    """Double-buffered, epoch-stamped snapshots over live operators.

    Parameters
    ----------
    operators:
        The live named operators (the ones the driver ingests into).
        Each needs either ``state_dict``/``load_state`` (preferred —
        publishes reuse the buffer clones allocation-free) or plain
        picklability (fallback — publishes re-pickle).
    """

    def __init__(self, operators: Mapping[str, Any]) -> None:
        if not operators:
            raise ValueError("need at least one operator to snapshot")
        self._live = dict(operators)
        self._codec_ok = all(
            hasattr(op, "state_dict") and hasattr(op, "load_state")
            for op in self._live.values()
        )
        self._buffers = (
            {name: _clone(op) for name, op in self._live.items()},
            {name: _clone(op) for name, op in self._live.items()},
        )
        self._front = 0
        self.epoch = 0
        self._snapshot = Snapshot(
            epoch=0, operators=dict(self._buffers[0]), items=0
        )

    # ------------------------------------------------------------------
    def publish(self, *, items: int = 0) -> int:
        """Copy live state into the back buffer, swap, bump the epoch.

        Called by the ingest path on batch boundaries only — between
        two driver runs, when operator state equals the exact fold of
        the prefix.  Returns the new epoch.
        """
        back = self._buffers[1 - self._front]
        if self._codec_ok:
            for name, live in self._live.items():
                back[name].load_state(live.state_dict())
        else:
            for name, live in self._live.items():
                back[name] = _clone(live)
        self._front = 1 - self._front
        self.epoch += 1
        self._snapshot = Snapshot(
            epoch=self.epoch, operators=dict(back), items=items
        )
        return self.epoch

    def read(self) -> Snapshot:
        """The latest published snapshot — a reference grab, never a
        copy, never blocking.  Valid until *two* further publishes."""
        return self._snapshot

    def query(self, fn: Callable[[Snapshot], Any], retries: int = 8) -> tuple[int, Any]:
        """Run ``fn(snapshot)`` with seqlock semantics: if two or more
        epochs published while ``fn`` ran (possible only for readers
        that suspend or run off-loop), the buffer ``fn`` read may have
        been rewritten — retry against the fresh snapshot.  Returns
        ``(epoch, result)`` for the epoch the result is consistent
        with."""
        for _ in range(retries):
            snap = self.read()
            result = fn(snap)
            if self.epoch - snap.epoch < 2:
                return snap.epoch, result
        # Pathologically hot publisher: serialize by reading the freshest
        # snapshot one last time; callers on the event loop never get here.
        snap = self.read()
        return snap.epoch, fn(snap)
