"""Back-compat shim: the epoch/snapshot layer moved to
:mod:`repro.concurrent.epoch`.

``Snapshot`` and ``SnapshotStore`` started life here as serve-tier
internals; once the minibatch driver's concurrent-query mode and the
thread-local buffered ingest path needed the same machinery, the
implementation moved to the shared concurrency layer
(:mod:`repro.concurrent`).  This module re-exports the moved symbols so

* existing ``from repro.serve.snapshot import SnapshotStore`` imports
  keep working, and
* pickles produced before the move (checkpoints embedding
  ``repro.serve.snapshot.Snapshot``) keep loading — pickle resolves the
  dotted path through this module to the relocated class
  (tests/test_concurrent.py exercises exactly that).

New code should import from :mod:`repro.concurrent`.
"""

from repro.concurrent.epoch import Snapshot, SnapshotStore, _clone

__all__ = ["Snapshot", "SnapshotStore"]
