"""Asyncio line-protocol client for :class:`~repro.serve.server.StreamServer`.

:class:`LineClient` is the reference ``serve/v1`` speaker: one method
per verb, each returning the decoded ``OK`` payload dict or raising
:class:`~repro.serve.protocol.ProtocolError` with the server's error
code in ``.args[0]``.  Tests, the CI smoke script, and ``repro client``
all drive the server through it.

    async with await LineClient.connect(host, port) as c:
        await c.hello("acme", ["count_min_sketch"])
        await c.ingest([3, 1, 4, 1, 5])
        answer = await c.query("count_min_sketch")
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.serve.protocol import (
    LINE_LIMIT,
    ProtocolError,
    encode_request,
    parse_response,
)

__all__ = ["LineClient"]


class LineClient:
    """One connection to a streaming server; not task-safe — use one
    client per concurrent tenant coroutine."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.tenant: str | None = None

    @classmethod
    async def connect(cls, host: str, port: int) -> "LineClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=LINE_LIMIT
        )
        return cls(reader, writer)

    async def __aenter__(self) -> "LineClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _round_trip(self, verb: str, *args: str) -> dict[str, Any]:
        self._writer.write(encode_request(verb, *args))
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> dict[str, Any]:
        raw = await self._reader.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return parse_response(raw.decode())

    # ------------------------------------------------------------------
    async def hello(self, tenant: str, ops: Sequence[str]) -> dict[str, Any]:
        """Open (or attach to) ``tenant``'s session serving ``ops``."""
        payload = await self._round_trip("HELLO", tenant, ",".join(ops))
        self.tenant = tenant
        return payload

    async def ingest(self, items: Sequence[int]) -> dict[str, Any]:
        """Submit one batch of integer stream items.  The response only
        arrives once the server has accepted the batch — so a throttled
        or backpressured tenant blocks right here, which is the
        protocol's flow control working as intended."""
        body = " ".join(str(int(x)) for x in items)
        self._writer.write(encode_request("INGEST", str(len(items))))
        self._writer.write((body + "\n").encode())
        await self._writer.drain()
        return await self._read_response()

    async def query(self, op: str) -> dict[str, Any]:
        """Probe ``op`` against the latest snapshot: ``{op, epoch, result}``."""
        return await self._round_trip("QUERY", op)

    async def ops(self) -> dict[str, Any]:
        return await self._round_trip("OPS")

    async def stats(self) -> dict[str, Any]:
        return await self._round_trip("STATS")

    async def ping(self) -> dict[str, Any]:
        return await self._round_trip("PING")

    async def quit(self) -> dict[str, Any]:
        return await self._round_trip("QUIT")

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
