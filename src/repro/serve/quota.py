"""Admission control and per-tenant rate limiting for the streaming
service.

Two small, clock-injectable mechanisms (docs/serving.md):

* :class:`TokenBucket` — the per-tenant items/sec quota.  A bucket
  holds up to ``burst`` tokens and refills at ``rate`` tokens/sec; one
  stream element costs one token.  The bucket uses the *deficit* model:
  a request always succeeds immediately in bookkeeping terms (tokens
  may go negative) and returns the number of seconds the caller must
  sleep before the debt is repaid — so an oversized batch throttles the
  submitting coroutine exactly once instead of being rejected or
  sliced.
* :class:`AdmissionController` — the max-tenants gate.  ``admit`` is a
  pure capacity check; the server calls it on the first ``HELLO`` of a
  new tenant and refuses the session with a protocol-level error when
  the fleet is full.

Both are deliberately synchronous and loop-free: the *caller* owns the
``await asyncio.sleep(delay)``, which keeps the quota layer trivially
testable with a fake clock.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["TokenBucket", "AdmissionController", "AdmissionError"]


class AdmissionError(RuntimeError):
    """A tenant was refused at admission (fleet at ``max_tenants``)."""


class TokenBucket:
    """Deficit token bucket: ``request(n)`` returns the throttle delay.

    Parameters
    ----------
    rate:
        Refill rate in tokens (stream items) per second.  ``math.inf``
        disables throttling entirely.
    burst:
        Bucket capacity — the largest debt-free request.  Defaults to
        one second's worth of tokens.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 (use math.inf to disable), got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise ValueError(f"burst must be > 0, got {self.burst}")
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        #: Total seconds of throttle delay handed out (metrics feed).
        self.throttled_seconds = 0.0

    def _refill(self) -> None:
        now = self._clock()
        if math.isinf(self.rate):
            self._tokens = self.burst
        else:
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now

    @property
    def available(self) -> float:
        """Tokens on hand right now (negative while in debt)."""
        self._refill()
        return self._tokens

    def request(self, n: int) -> float:
        """Charge ``n`` tokens; return the seconds to sleep before the
        bucket is out of debt (0.0 when the request fits the balance).

        The charge always lands — the caller's contract is to *sleep
        the returned delay before reading more input*, which is what
        makes the bucket enforce ``rate`` items/sec on average while
        letting bursts up to ``burst`` through untouched.
        """
        if n < 0:
            raise ValueError(f"cannot request {n} tokens")
        self._refill()
        self._tokens -= n
        if self._tokens >= 0 or math.isinf(self.rate):
            return 0.0
        delay = -self._tokens / self.rate
        self.throttled_seconds += delay
        return delay


@dataclass
class AdmissionController:
    """The max-tenants gate: a counting semaphore with a reason string.

    ``admit(tenant)`` reserves a slot or raises :class:`AdmissionError`;
    ``release(tenant)`` frees it when the session is torn down.  Re-
    admitting a live tenant is a no-op (reconnects attach, they don't
    consume a second slot).
    """

    max_tenants: int
    _live: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {self.max_tenants}")

    @property
    def tenants(self) -> int:
        return len(self._live)

    def admit(self, tenant: str) -> None:
        if tenant in self._live:
            return
        if len(self._live) >= self.max_tenants:
            raise AdmissionError(
                f"tenant {tenant!r} refused: {len(self._live)}/"
                f"{self.max_tenants} tenant slots in use"
            )
        self._live.add(tenant)

    def release(self, tenant: str) -> None:
        self._live.discard(tenant)
