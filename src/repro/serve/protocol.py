"""The ``serve/v1`` line protocol: framing shared by server and client.

Everything is UTF-8 lines (docs/serving.md has the full spec).  A
session opens with ``HELLO``; ``INGEST`` is the only two-line request
(the command line announces the item count, the next line carries the
whitespace-separated items):

========================  =============================================
request                   meaning
========================  =============================================
``HELLO <tenant> <ops>``  open/attach a tenant session; ``ops`` is a
                          comma-separated list of servable registry
                          operator names
``INGEST <n>``            next line: n whitespace-separated int items
``QUERY <op>``            run op's canonical probe on the latest
                          published snapshot
``OPS``                   the servable operator catalog
``STATS``                 tenant counters (epoch, queue depth, ...)
``PING``                  liveness probe
``QUIT``                  close this connection (session stays live)
========================  =============================================

Every response is exactly one line: ``OK <json>`` or
``ERR <code> <message>``.  Error codes are machine-checkable tokens
(``admission``, ``unknown-op``, ``no-session``, ``protocol``,
``draining``), the tail is human-readable.

:data:`LINE_LIMIT` bounds both directions; an ``INGEST`` line larger
than the limit is a protocol error, which bounds per-connection memory
no matter what a client sends.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "LINE_LIMIT",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "encode_err",
    "encode_ok",
    "encode_request",
    "jsonable",
    "parse_request",
    "parse_response",
]

PROTOCOL_VERSION = "serve/v1"

#: Max bytes per line, either direction (asyncio StreamReader limit).
LINE_LIMIT = 1 << 20

#: Commands that take (exactly) the argument counts given; INGEST's
#: payload line is read separately by the server loop.
_ARITY = {
    "HELLO": 2,
    "INGEST": 1,
    "QUERY": 1,
    "OPS": 0,
    "STATS": 0,
    "PING": 0,
    "QUIT": 0,
}


class ProtocolError(ValueError):
    """A malformed request or response line."""


@dataclass(frozen=True)
class Request:
    """One parsed request line."""

    verb: str
    args: tuple[str, ...]


def parse_request(line: str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` on junk."""
    parts = line.strip().split()
    if not parts:
        raise ProtocolError("empty request line")
    verb = parts[0].upper()
    arity = _ARITY.get(verb)
    if arity is None:
        raise ProtocolError(f"unknown verb {parts[0]!r}")
    args = tuple(parts[1:])
    if len(args) != arity:
        raise ProtocolError(
            f"{verb} takes {arity} argument(s), got {len(args)}"
        )
    return Request(verb=verb, args=args)


def encode_request(verb: str, *args: str) -> bytes:
    return (" ".join((verb, *args)) + "\n").encode()


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def jsonable(value: Any) -> Any:
    """Recursively coerce probe results (NumPy scalars/arrays, tuples,
    dict keys of any scalar type) into plain JSON-serializable data."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


def encode_ok(payload: dict[str, Any]) -> bytes:
    text = json.dumps(jsonable(payload), separators=(",", ":"))
    return f"OK {text}\n".encode()


def encode_err(code: str, message: str) -> bytes:
    return f"ERR {code} {message}\n".encode()


def parse_response(line: str) -> dict[str, Any]:
    """Decode one response line into its payload dict.

    ``ERR`` lines raise :class:`ProtocolError` with the code preserved
    in ``.args[0]`` (clients branch on it)."""
    line = line.strip()
    if line.startswith("OK "):
        try:
            return json.loads(line[3:])
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"bad OK payload: {exc}") from None
    if line.startswith("ERR "):
        code, _, message = line[4:].partition(" ")
        exc = ProtocolError(code, message)
        raise exc
    raise ProtocolError(f"unrecognizable response line {line[:80]!r}")
