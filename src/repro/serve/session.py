"""Per-tenant ingest/query session: queue → driver → snapshot.

One :class:`TenantSession` is one tenant's whole pipeline
(docs/serving.md):

* a **bounded queue** of submitted minibatch arrays, with a
  high-watermark backpressure gate — when the queue fills past the
  watermark, :meth:`submit` parks until the pump drains below the low
  watermark, which is what slows the connection's read loop down to
  the tenant's sustainable ingest rate;
* a per-tenant **token bucket** (items/sec quota, docs/serving.md) —
  :meth:`submit` sleeps out the bucket's throttle delay *before*
  enqueueing, so a tenant over quota backs its own socket up rather
  than starving neighbours;
* the **pump task**, which coalesces queued arrays up to the batch
  size, hands them to this tenant's registry-built operators through a
  :class:`~repro.stream.minibatch.MinibatchDriver`, and **publishes a
  snapshot** on the batch boundary — bumping the tenant's epoch;
* the **query surface**: every servable registry operator the tenant
  named at construction answers its canonical probe against the latest
  published snapshot (:mod:`repro.concurrent.epoch`, re-exported from
  ``repro.serve.snapshot`` for back-compat), so queries never touch
  live state and never block ingest.

Shutdown is :meth:`drain`: stop accepting, pump the queue dry, publish
the final epoch, optionally write a checkpoint of the full driver
state, and report whether the dead-letter queue is empty — the clean-
drain contract the server's shutdown path and the CI smoke test assert.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Mapping, Sequence

import numpy as np

from repro.engine import registry
from repro.observability.metrics import REGISTRY
from repro.resilience.checkpoint import CheckpointManager
from repro.concurrent.epoch import Snapshot, SnapshotStore
from repro.serve.quota import TokenBucket
from repro.stream.minibatch import MinibatchDriver

__all__ = ["TenantSession", "DrainReport"]

# Serve metrics, per tenant (catalog: docs/observability.md).
_M_INGEST = REGISTRY.counter(
    "repro_serve_ingest_total",
    "Stream items accepted into tenant ingest queues",
    labels=("tenant",),
)
_M_BATCHES = REGISTRY.counter(
    "repro_serve_batches_total",
    "Coalesced batches pumped through tenant drivers",
    labels=("tenant",),
)
_M_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_serve_queue_depth",
    "Pending submissions in a tenant's bounded ingest queue",
    labels=("tenant",),
)
_M_EPOCH = REGISTRY.gauge(
    "repro_serve_epoch",
    "Latest published snapshot epoch per tenant",
    labels=("tenant",),
)
_M_QUERY_SECONDS = REGISTRY.histogram(
    "repro_serve_query_seconds",
    "Wall-clock seconds per snapshot query",
)
_M_THROTTLED = REGISTRY.counter(
    "repro_serve_throttled_seconds_total",
    "Quota throttle delay imposed on tenant submissions",
    labels=("tenant",),
)
_M_BACKPRESSURE = REGISTRY.counter(
    "repro_serve_backpressure_waits_total",
    "Submissions parked at the queue high watermark",
    labels=("tenant",),
)

#: Queue sentinel that tells the pump to exit after draining.
_SHUTDOWN = None


@dataclass(frozen=True)
class DrainReport:
    """Outcome of one tenant's graceful drain."""

    tenant: str
    items: int
    batches: int
    epoch: int
    checkpoint: str | None
    dead_letters: int

    @property
    def clean(self) -> bool:
        """A clean drain left nothing behind: every accepted item was
        folded and the dead-letter queue is empty."""
        return self.dead_letters == 0


class TenantSession:
    """One tenant's queue → driver → snapshot pipeline.

    Parameters
    ----------
    tenant:
        Tenant id (metric label, checkpoint tag, protocol handle).
    ops:
        Servable registry operator names this tenant owns; each is
        built fresh from its spec's seeded factory.  A pre-built
        ``{name: operator}`` mapping is also accepted (benchmarks
        construct thousands of sessions and want to pick sizes).
    quota_rate / quota_burst:
        Token-bucket items/sec quota; ``None`` disables throttling.
    queue_max:
        Bounded-queue capacity in *submissions* (arrays, not items).
    high_watermark:
        Queue depth at which :meth:`submit` starts parking; defaults to
        3/4 of ``queue_max``.  The pump releases parked submitters once
        depth falls to half the watermark.
    batch_size:
        Coalescing target for the driver hand-off.
    shards:
        Optional elastic shard count forwarded to the driver (mergeable
        operators only, docs/resilience.md).
    fuse_kernels:
        Forwarded to the driver: fused multi-operator ingest kernels
        (docs/performance.md).  Default ``None`` lets the driver
        auto-enable fusion whenever the tenant's operator set and
        execution mode allow it.
    checkpoint_manager:
        Destination for the drain-time snapshot of full driver state.
    clock / sleep:
        Injectable time sources (tests drive quotas deterministically).
    """

    def __init__(
        self,
        tenant: str,
        ops: Sequence[str] | Mapping[str, Any],
        *,
        quota_rate: float | None = None,
        quota_burst: float | None = None,
        queue_max: int = 64,
        high_watermark: int | None = None,
        batch_size: int = 4096,
        shards: int | None = None,
        fuse_kernels: bool | None = None,
        checkpoint_manager: CheckpointManager | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        if queue_max < 1:
            raise ValueError(f"queue_max must be >= 1, got {queue_max}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.tenant = tenant
        if isinstance(ops, Mapping):
            self.operators = dict(ops)
        else:
            if not ops:
                raise ValueError("tenant needs at least one operator")
            self.operators = {}
            for name in ops:
                spec = registry.get(name)  # KeyError -> unknown-op
                if not spec.servable:
                    raise ValueError(f"operator {name} has no query probe")
                self.operators[name] = spec.build()
        driver_kwargs: dict[str, Any] = {}
        if shards is not None:
            driver_kwargs["shards"] = shards
        if fuse_kernels is not None:
            driver_kwargs["fuse_kernels"] = fuse_kernels
        self.driver = MinibatchDriver(self.operators, **driver_kwargs)
        self.snapshots = SnapshotStore(self.operators, name=f"tenant:{tenant}")
        self.bucket = (
            TokenBucket(quota_rate, quota_burst, clock=clock)
            if quota_rate is not None
            else None
        )
        self.batch_size = int(batch_size)
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_max)
        self.high_watermark = (
            int(high_watermark)
            if high_watermark is not None
            else max(1, (3 * queue_max) // 4)
        )
        if not 1 <= self.high_watermark <= queue_max:
            raise ValueError(
                f"need 1 <= high_watermark <= queue_max, got "
                f"{self.high_watermark}/{queue_max}"
            )
        self.low_watermark = self.high_watermark // 2
        self.checkpoint_manager = checkpoint_manager
        self._sleep = sleep
        self._below_high = asyncio.Event()
        self._below_high.set()
        self._pump_task: asyncio.Task | None = None
        self._draining = False
        self.items_accepted = 0
        self.items_folded = 0
        self.batches_pumped = 0
        self.throttled_seconds = 0.0
        self.backpressure_waits = 0
        self.connections = 0

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self.snapshots.epoch

    def start(self) -> None:
        """Launch the pump task (idempotent)."""
        if self._pump_task is None:
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump(), name=f"serve-pump-{self.tenant}"
            )

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------
    async def submit(self, items: Sequence[int] | np.ndarray) -> int:
        """Quota-throttle, backpressure-gate, and enqueue one array of
        stream items.  Returns how many items were accepted."""
        if self._draining:
            raise RuntimeError(f"tenant {self.tenant} is draining")
        batch = np.asarray(items, dtype=np.int64)
        if batch.size == 0:
            return 0
        if self.bucket is not None:
            delay = self.bucket.request(int(batch.size))
            if delay > 0:
                self.throttled_seconds += delay
                _M_THROTTLED.inc(delay, tenant=self.tenant)
                await self._sleep(delay)
        if self.queue.qsize() >= self.high_watermark:
            # High watermark reached: park this submitter (and with it
            # the connection's read loop) until the pump drains the
            # queue down to the low watermark — backpressure, not drop.
            self._below_high.clear()
            self.backpressure_waits += 1
            _M_BACKPRESSURE.inc(tenant=self.tenant)
            await self._below_high.wait()
        await self.queue.put(batch)
        self.items_accepted += int(batch.size)
        _M_INGEST.inc(int(batch.size), tenant=self.tenant)
        _M_QUEUE_DEPTH.set(self.queue.qsize(), tenant=self.tenant)
        return int(batch.size)

    async def _pump(self) -> None:
        """Coalesce queued arrays to ~batch_size and run the driver,
        publishing a snapshot on every batch boundary."""
        while True:
            head = await self.queue.get()
            if head is _SHUTDOWN:
                self.queue.task_done()
                break
            chunks = [head]
            size = int(head.size)
            while size < self.batch_size:
                try:
                    nxt = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _SHUTDOWN:
                    # Put the sentinel back so the outer loop exits once
                    # this final batch is folded and published.
                    self.queue.task_done()
                    self.queue.put_nowait(_SHUTDOWN)
                    break
                chunks.append(nxt)
                size += int(nxt.size)
            batch = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            self.driver.run(batch, batch_size=self.batch_size)
            self.items_folded += int(batch.size)
            self.batches_pumped += 1
            _M_BATCHES.inc(tenant=self.tenant)
            self.snapshots.publish(items=self.items_folded)
            _M_EPOCH.set(self.epoch, tenant=self.tenant)
            for _ in chunks:
                self.queue.task_done()
            if self.queue.qsize() <= self.low_watermark:
                self._below_high.set()
            _M_QUEUE_DEPTH.set(self.queue.qsize(), tenant=self.tenant)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def query(self, op_name: str) -> tuple[int, Any]:
        """Answer ``op_name``'s canonical probe against the latest
        published snapshot.  Returns ``(epoch, result)`` — the epoch
        identifies exactly which stream prefix the answer describes."""
        if op_name not in self.operators:
            raise KeyError(
                f"tenant {self.tenant} has no operator {op_name!r}; "
                f"owns {sorted(self.operators)}"
            )
        spec = registry.get(op_name)
        t0 = time.perf_counter()
        epoch, result = self.snapshots.query(
            lambda snap: spec.probe(snap[op_name])
        )
        _M_QUERY_SECONDS.observe(time.perf_counter() - t0)
        return epoch, result

    def read_snapshot(self) -> Snapshot:
        return self.snapshots.read()

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "ops": sorted(self.operators),
            "epoch": self.epoch,
            "items_accepted": self.items_accepted,
            "items_folded": self.items_folded,
            "batches": self.batches_pumped,
            "queue_depth": self.queue.qsize(),
            "throttled_seconds": round(self.throttled_seconds, 6),
            "backpressure_waits": self.backpressure_waits,
            "shards": self.driver.shard_counts() or None,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> DrainReport:
        """Graceful shutdown: refuse new submissions, pump the queue
        dry, publish the final epoch, checkpoint, and account.

        The returned report's :attr:`DrainReport.clean` is the serve
        layer's acceptance contract: every accepted item folded and a
        dead-letter queue with nothing in it."""
        self._draining = True
        if self._pump_task is not None:
            await self.queue.put(_SHUTDOWN)
            await self._pump_task
            self._pump_task = None
        # Final epoch: even an empty queue publishes once more so the
        # drained state is the one readers see.
        self.snapshots.publish(items=self.items_folded)
        _M_EPOCH.set(self.epoch, tenant=self.tenant)
        _M_QUEUE_DEPTH.set(0, tenant=self.tenant)
        path: str | None = None
        serializable = all(
            hasattr(op, "state_dict") for op in self.operators.values()
        )
        if self.checkpoint_manager is not None and serializable:
            saved = self.checkpoint_manager.save(
                {"tenant": self.tenant, "driver": self.driver.state_dict()},
                batch_index=self.batches_pumped,
            )
            path = str(saved)
        dlq = self.driver.dead_letter
        return DrainReport(
            tenant=self.tenant,
            items=self.items_folded,
            batches=self.batches_pumped,
            epoch=self.epoch,
            checkpoint=path,
            dead_letters=len(dlq) if dlq is not None else 0,
        )
