"""The independent-data-structure approach (Figure 1 left, §5.4).

Each of p simulated processors runs its own sequential Misra-Gries
summary over its share of the stream; a query merges all p summaries
with the mergeable-summaries MG merge [ACH+13] (add counts, then prune
back to capacity — the same operation as ``mg_augment``).

The paper's two criticisms, both measurable here (benchmark E12):

* **memory** — p summaries cost Θ(p/ε) words, a factor p more than the
  shared structure;
* **merge bottleneck** — merging is inherently sequential per pair:
  a chain merge costs Ω(p/ε) depth, and even a balanced binary tree of
  merges costs Ω(ε⁻¹ log p) depth, versus polylog(1/ε) for the shared
  structure.

Per-pair merges are charged with depth = work (each merge is a
sequential O(S) operation); the tree variant runs the pairs of each
level in a fork-join region.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

from repro.core.misra_gries import MisraGriesSummary
from repro.pram.cost import charge, parallel

__all__ = ["IndependentMGEnsemble", "mg_merge"]


def mg_merge(
    a: dict[Hashable, int], b: dict[Hashable, int], capacity: int
) -> dict[Hashable, int]:
    """[ACH+13] merge of two MG summaries: add counts, subtract the
    (S+1)-th largest so at most S survive.  Sequential: O(S) work,
    charged with equal depth."""
    combined: dict[Hashable, int] = dict(a)
    for item, count in b.items():
        combined[item] = combined.get(item, 0) + count
    size = len(combined)
    charge(work=max(1, size), depth=max(1, size))
    if size <= capacity:
        return combined
    counts = sorted(combined.values(), reverse=True)
    phi = counts[capacity]  # (S+1)-th largest
    return {item: c - phi for item, c in combined.items() if c > phi}


class IndependentMGEnsemble:
    """p per-processor MG summaries + merge-on-query (Fig. 1, left)."""

    def __init__(self, processors: int, eps: float) -> None:
        if processors < 1:
            raise ValueError(f"processors must be >= 1, got {processors}")
        if not 0 < eps <= 1:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        self.processors = int(processors)
        self.eps = float(eps)
        self.capacity = math.ceil(1.0 / eps)
        self.summaries: list[MisraGriesSummary] = [
            MisraGriesSummary(capacity=self.capacity) for _ in range(processors)
        ]
        self.stream_length = 0

    def ingest(self, batch: Sequence[Hashable] | np.ndarray) -> None:
        """Stripe the minibatch across processors; each runs sequential
        MG over its stripe (fork-join across processors, sequential
        within)."""
        batch = np.asarray(batch)
        mu = len(batch)
        if mu == 0:
            return
        with parallel() as par:
            for i, summary in enumerate(self.summaries):
                stripe = batch[i :: self.processors]

                def strand(
                    stripe: np.ndarray = stripe,
                    summary: MisraGriesSummary = summary,
                ) -> None:
                    # Item-at-a-time within a processor: depth = work.
                    charge(work=max(1, stripe.size), depth=max(1, stripe.size))
                    summary.extend(stripe)

                par.run(strand)
        self.stream_length += mu

    extend = ingest

    def merged(self, *, tree: bool = True) -> dict[Hashable, int]:
        """Merge all p summaries into one (the query-time step).

        ``tree=True`` merges in ⌈log p⌉ fork-join levels (depth
        Ω(ε⁻¹ log p)); ``tree=False`` merges in a sequential chain
        (depth Ω(p·ε⁻¹)).
        """
        frontier: list[dict[Hashable, int]] = [
            dict(s.counters) for s in self.summaries
        ]
        if not tree:
            acc = frontier[0]
            for other in frontier[1:]:
                acc = mg_merge(acc, other, self.capacity)
            return acc
        while len(frontier) > 1:
            with parallel() as par:
                pairs = [
                    (frontier[i], frontier[i + 1])
                    for i in range(0, len(frontier) - 1, 2)
                ]
                merged_level = [
                    par.run(mg_merge, a, b, self.capacity) for a, b in pairs
                ]
            if len(frontier) % 2:
                merged_level.append(frontier[-1])
            frontier = merged_level
        return frontier[0]

    def estimate(self, item: Hashable, *, tree: bool = True) -> int:
        return self.merged(tree=tree).get(item, 0)

    @property
    def space(self) -> int:
        """Θ(p/ε) — the factor-p blow-up §5.4 calls out."""
        return sum(s.space for s in self.summaries)


# ----------------------------------------------------------------------
from repro.engine.registry import Capabilities, register  # noqa: E402

register(
    IndependentMGEnsemble,
    summary="p independent MG summaries, no shared prework (E12 foil)",
    input="items",
    caps=Capabilities(),
    build=lambda: IndependentMGEnsemble(processors=3, eps=0.1),
    probe=lambda op: [op.estimate(i) for i in range(64)],
)
