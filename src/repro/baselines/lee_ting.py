"""Sequential Lee-Ting λ-counter [LT06a, LT06b].

The item-at-a-time deterministic-sampling counter the paper's SBBC
parallelizes: record the block of every γ-th 1, evict blocks that slide
out of the window, report γ|Q| + ℓ.  Additive error ≤ 2γ ≤ λ.

This is *the* sequential counterpart for benchmark E5's work-efficiency
comparison: the SBBC must do no more (charged) work per minibatch than
this loop does across the same elements, and this loop's depth equals
its work.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.pram.cost import charge

__all__ = ["LeeTingCounter"]


class LeeTingCounter:
    """Sequential (λ-additive-error) count of 1s in the last n bits."""

    def __init__(self, window: int, lam: float) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if lam <= 0:
            raise ValueError(f"lambda must be > 0, got {lam}")
        self.window = int(window)
        self.lam = float(lam)
        self.gamma = max(1, int(lam // 2))
        self._blocks: deque[int] = deque()  # sampled block ids, oldest first
        self._ell = 0
        self.t = 0

    def update(self, bit: int) -> None:
        """One bit: O(1) amortized sequential work (charged 1 + evictions)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0/1, got {bit}")
        self.t += 1
        ops = 1
        if bit:
            self._ell += 1
            if self._ell == self.gamma:
                self._blocks.append((self.t + self.gamma - 1) // self.gamma)
                self._ell = 0
        # Evict blocks whose last position left the window.
        window_start = self.t - self.window + 1
        while self._blocks and self._blocks[0] * self.gamma < window_start:
            self._blocks.popleft()
            ops += 1
        charge(work=ops, depth=ops)  # sequential baseline

    def extend(self, bits: Iterable[int] | np.ndarray) -> None:
        for b in np.asarray(bits, dtype=np.int64):
            self.update(int(b))

    ingest = extend

    def query(self) -> int:
        """γ|Q| + ℓ ∈ [m, m + 2γ] ⊆ [m, m + λ]."""
        charge(work=1, depth=1)
        return self.gamma * len(self._blocks) + self._ell

    @property
    def space(self) -> int:
        return len(self._blocks) + 3


# ----------------------------------------------------------------------
from repro.engine.registry import Capabilities, register  # noqa: E402

register(
    LeeTingCounter,
    summary="Lee-Ting lambda-approximate sliding bit counter [LT06]",
    input="bits",
    caps=Capabilities(windowed=True),
    build=lambda: LeeTingCounter(window=64, lam=4.0),
    probe=lambda op: op.query(),
)
