"""Exact hash-map counting — the unbounded-memory reference point.

Not an approximation algorithm at all: a plain dictionary of counts,
used in benchmarks to show the memory the synopses avoid and in tests
as a second opinion alongside :mod:`repro.stream.oracle`.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable

import numpy as np

from repro.pram.cost import charge

__all__ = ["ExactCounters"]


class ExactCounters:
    """Exact infinite-window frequencies with O(#distinct) memory."""

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self.stream_length = 0

    def update(self, item: Hashable) -> None:
        charge(work=1, depth=1)
        self.counters[item] += 1
        self.stream_length += 1

    def extend(self, batch: Iterable[Hashable] | np.ndarray) -> None:
        for item in batch:
            item = item.item() if isinstance(item, np.generic) else item
            self.update(item)

    ingest = extend

    def estimate(self, item: Hashable) -> int:
        return self.counters.get(item, 0)

    def heavy_hitters(self, phi: float) -> dict[Hashable, int]:
        threshold = phi * self.stream_length
        return {e: c for e, c in self.counters.items() if c >= threshold}

    @property
    def space(self) -> int:
        return len(self.counters) + 1

    def merge(self, other: "ExactCounters") -> None:
        """Add another counter map into this one — trivially mergeable
        (exact counts are linear), charged sequentially like the rest
        of this baseline."""
        charge(work=max(1, len(other.counters)), depth=max(1, len(other.counters)))
        self.counters.update(other.counters)
        self.stream_length += other.stream_length

    def fresh_clone(self) -> "ExactCounters":
        """An empty counter map — the per-shard accumulator for sharded
        ingest / merge trees."""
        return type(self)()


# ----------------------------------------------------------------------
from repro.engine.registry import Capabilities, register  # noqa: E402

register(
    ExactCounters,
    summary="exact hash-map counts, unbounded memory reference",
    input="items",
    caps=Capabilities(mergeable=True),
    build=lambda: ExactCounters(),
    probe=lambda op: [op.estimate(i) for i in range(64)],
)
