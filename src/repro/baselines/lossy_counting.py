"""Lossy Counting [MM02] — the deterministic frequent-items baseline
with periodic pruning.

The stream is viewed in buckets of width w = ⌈1/ε⌉; each tracked item
carries (count, Δ) where Δ bounds the occurrences missed before the
item was (re)inserted.  At bucket boundaries, entries with
count + Δ <= current bucket are pruned.  Guarantees
``f_e − εm <= count_e <= f_e`` with O(ε⁻¹ log(εm)) space.

Charged sequentially (depth = work) like the other baselines.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable

import numpy as np

from repro.pram.cost import charge

__all__ = ["LossyCounting"]


class LossyCounting:
    """Lossy Counting with error parameter ε."""

    def __init__(self, eps: float) -> None:
        if not 0 < eps <= 1:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        self.eps = float(eps)
        self.bucket_width = math.ceil(1.0 / eps)
        self.entries: dict[Hashable, tuple[int, int]] = {}  # item -> (count, delta)
        self.stream_length = 0

    def update(self, item: Hashable) -> None:
        self.stream_length += 1
        charge(work=1, depth=1)
        bucket = math.ceil(self.stream_length / self.bucket_width)
        if item in self.entries:
            count, delta = self.entries[item]
            self.entries[item] = (count + 1, delta)
        else:
            self.entries[item] = (1, bucket - 1)
        if self.stream_length % self.bucket_width == 0:
            self._prune(bucket)

    def _prune(self, bucket: int) -> None:
        charge(work=max(1, len(self.entries)), depth=max(1, len(self.entries)))
        self.entries = {
            item: (count, delta)
            for item, (count, delta) in self.entries.items()
            if count + delta > bucket
        }

    def extend(self, batch: Iterable[Hashable] | np.ndarray) -> None:
        for item in batch:
            item = item.item() if isinstance(item, np.generic) else item
            self.update(item)

    ingest = extend

    def estimate(self, item: Hashable) -> int:
        """Underestimate: f_e − εm <= est <= f_e."""
        entry = self.entries.get(item)
        return entry[0] if entry else 0

    def heavy_hitters(self, phi: float) -> dict[Hashable, int]:
        """Standard rule: report items with count >= (φ − ε)·m."""
        threshold = (phi - self.eps) * self.stream_length
        return {
            item: count
            for item, (count, _) in self.entries.items()
            if count >= threshold
        }

    @property
    def space(self) -> int:
        return 2 * len(self.entries) + 2


# ----------------------------------------------------------------------
from repro.engine.registry import Capabilities, register  # noqa: E402

register(
    LossyCounting,
    summary="Lossy Counting [MM02], bucket-deleting frequency baseline",
    input="items",
    caps=Capabilities(),
    build=lambda: LossyCounting(eps=0.1),
    probe=lambda op: [op.estimate(i) for i in range(64)],
)
