"""Baselines the paper compares against (or builds upon).

Sequential comparators charge the cost ledger with *sequential* depth
(depth = work) so that work-efficiency and depth comparisons against
the parallel algorithms are meaningful in the benchmarks.
"""

from repro.baselines.dgim import DGIMCounter
from repro.baselines.exact import ExactCounters
from repro.baselines.independent import IndependentMGEnsemble
from repro.baselines.lee_ting import LeeTingCounter
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.sequential_cms import SequentialCountMin
from repro.baselines.sequential_mg import SequentialMisraGries, sequential_heavy_hitters
from repro.baselines.space_saving import SpaceSaving

__all__ = [
    "DGIMCounter",
    "ExactCounters",
    "IndependentMGEnsemble",
    "LeeTingCounter",
    "LossyCounting",
    "SequentialCountMin",
    "SequentialMisraGries",
    "sequential_heavy_hitters",
    "SpaceSaving",
]
