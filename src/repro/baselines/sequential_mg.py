"""Item-at-a-time Misra-Gries [MG82] as a charged sequential baseline.

The algorithm itself lives in :mod:`repro.core.misra_gries` (Algorithm
1 is shared verbatim); this module wraps it with sequential cost
charging — every ``update`` bills one ledger step with depth = work —
so the E9/E12 work and depth comparisons against the minibatch-parallel
estimator are apples-to-apples.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro.core.misra_gries import MisraGriesSummary
from repro.pram.cost import charge

__all__ = ["SequentialMisraGries", "sequential_heavy_hitters"]


class SequentialMisraGries(MisraGriesSummary):
    """Misra-Gries with per-item sequential cost charging."""

    def update(self, item: Hashable) -> None:
        # A decrement-all round touches every counter; normal arrivals
        # are O(1).
        at_capacity = (
            item not in self.counters and len(self.counters) >= self.capacity
        )
        ops = 1 + (len(self.counters) if at_capacity else 0)
        charge(work=ops, depth=ops)
        super().update(item)

    def ingest(self, batch) -> None:
        self.extend(batch)

    def ingest_prepared(self, plan) -> None:
        # Deliberately bypass the parent's vectorized batch kernel: this
        # baseline exists to charge the sequential per-item cost, so a
        # shared batch plan must not skip the per-item update() loop.
        self.extend(plan.raw)


def sequential_heavy_hitters(
    stream: Iterable[Hashable] | np.ndarray, phi: float, eps: float
) -> dict[Hashable, int]:
    """One-shot sequential φ-heavy hitters via Misra-Gries.

    Reports items with estimate ≥ (φ − ε)·N, the same reduction the
    parallel trackers use.
    """
    if not 0 < eps < phi < 1:
        raise ValueError(f"need 0 < eps < phi < 1, got eps={eps}, phi={phi}")
    summary = SequentialMisraGries(eps=eps)
    summary.extend(stream)
    threshold = (phi - eps) * summary.stream_length
    return {e: c for e, c in summary.counters.items() if c >= threshold}


# ----------------------------------------------------------------------
from repro.engine.registry import Capabilities, register  # noqa: E402

register(
    SequentialMisraGries,
    summary="item-at-a-time Misra-Gries [MG82], depth=work charging",
    input="items",
    caps=Capabilities(
        mergeable=True, preparable=True, invariant_checked=True, concurrent=True
    ),
    build=lambda: SequentialMisraGries(eps=0.1),
    probe=lambda op: [op.estimate(i) for i in range(64)],
)
