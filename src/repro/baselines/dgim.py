"""DGIM exponential histograms for basic counting [DGIM02].

The classic *sequential* sliding-window counter the paper cites as the
origin of the problem: buckets of sizes 1, 2, 4, … (each holding the
timestamp of its most recent 1), with at most k+1 buckets per size,
k = ⌈1/ε⌉.  Relative error ≤ 1/k ≤ ε; space O(ε⁻¹ log² n) *bits* —
O(ε⁻¹ log n) bucket records.

Serves as the sequential comparator for benchmark E6: same accuracy
target as :class:`repro.core.ParallelBasicCounter`, but item-at-a-time
updates (charged depth = work) and no decrement/minibatch support.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable

import numpy as np

from repro.pram.cost import charge

__all__ = ["DGIMCounter"]


class DGIMCounter:
    """Sequential ε-approximate count of 1s in the last ``window`` bits."""

    def __init__(self, window: int, eps: float) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0 < eps <= 1:
            raise ValueError(f"eps must be in (0, 1], got {eps}")
        self.window = int(window)
        self.eps = float(eps)
        self.k = math.ceil(1.0 / eps)
        # Buckets as (timestamp_of_latest_one, size), newest first.
        self._buckets: deque[tuple[int, int]] = deque()
        self.t = 0

    def update(self, bit: int) -> None:
        """Process one bit (charged as one sequential step plus any
        cascading merges)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0/1, got {bit}")
        self.t += 1
        ops = 1
        # Expire the oldest bucket if its timestamp left the window.
        if self._buckets and self._buckets[-1][0] <= self.t - self.window:
            self._buckets.pop()
        if bit:
            self._buckets.appendleft((self.t, 1))
            # Merge cascades: allow at most k+1 buckets of each size.
            size = 1
            while True:
                same = [b for b in self._buckets if b[1] == size]
                if len(same) <= self.k + 1:
                    break
                ops += len(same)
                # Merge the two *oldest* buckets of this size.
                oldest_two = same[-2:]
                merged = (max(ts for ts, _ in oldest_two), 2 * size)
                removed = 0
                new_buckets: deque[tuple[int, int]] = deque()
                inserted = False
                for b in self._buckets:
                    if b in oldest_two and removed < 2:
                        removed += 1
                        if removed == 2 and not inserted:
                            new_buckets.append(merged)
                            inserted = True
                        continue
                    new_buckets.append(b)
                self._buckets = new_buckets
                size *= 2
        charge(work=ops, depth=ops)  # sequential baseline

    def extend(self, bits: Iterable[int] | np.ndarray) -> None:
        for b in np.asarray(bits, dtype=np.int64):
            self.update(int(b))

    ingest = extend

    def query(self) -> float:
        """Estimate: all full buckets plus half the oldest (straddling)
        bucket — the standard DGIM estimator."""
        charge(work=max(1, len(self._buckets)), depth=max(1, len(self._buckets)))
        live = [b for b in self._buckets if b[0] > self.t - self.window]
        if not live:
            return 0.0
        total = sum(size for _, size in live)
        oldest_size = live[-1][1]
        return total - oldest_size / 2.0 + 0.5 if oldest_size > 1 else float(total)

    @property
    def space(self) -> int:
        return 2 * len(self._buckets) + 2


# ----------------------------------------------------------------------
from repro.engine.registry import Capabilities, register  # noqa: E402

register(
    DGIMCounter,
    summary="DGIM exponential-histogram bit counter [DGIM02]",
    input="bits",
    caps=Capabilities(windowed=True),
    build=lambda: DGIMCounter(window=64, eps=0.5),
    probe=lambda op: op.query(),
)
