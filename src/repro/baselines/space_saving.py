"""Space-Saving [MAE06] — counter-based frequent-items baseline.

Keeps exactly S counters; a new item evicts the current *minimum*
counter and inherits its count plus one.  Guarantees, for S = ⌈1/ε⌉:

    f_e <= count_e <= f_e + min_count   and   min_count <= m/S <= εm,

i.e. a (one-sided-overestimate) εm-accurate tracker — the symmetric
counterpart to Misra-Gries' underestimates.  Included because the
paper's related-work compares counter-based schemes, and because its
*overestimates* make a useful contrast in the E9 accuracy tables.

Implementation: dict + lazy min-heap; amortized O(log S) per item,
charged sequentially (depth = work).
"""

from __future__ import annotations

import heapq
import math
from typing import Hashable, Iterable

import numpy as np

from repro.pram.cost import charge

__all__ = ["SpaceSaving"]


class SpaceSaving:
    """Space-Saving summary with capacity S = ⌈1/ε⌉ (or explicit)."""

    def __init__(self, eps: float | None = None, *, capacity: int | None = None) -> None:
        if (eps is None) == (capacity is None):
            raise ValueError("pass exactly one of eps / capacity")
        if capacity is None:
            if not 0 < eps <= 1:  # type: ignore[operator]
                raise ValueError(f"eps must be in (0, 1], got {eps}")
            capacity = math.ceil(1.0 / eps)  # type: ignore[arg-type]
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.counters: dict[Hashable, int] = {}
        self._heap: list[tuple[int, Hashable]] = []  # lazy (count, item)
        self.stream_length = 0

    def update(self, item: Hashable) -> None:
        self.stream_length += 1
        charge(work=2, depth=2)  # sequential baseline (amortized heap ops)
        counters = self.counters
        if item in counters:
            counters[item] += 1
            heapq.heappush(self._heap, (counters[item], item))
            return
        if len(counters) < self.capacity:
            counters[item] = 1
            heapq.heappush(self._heap, (1, item))
            return
        # Evict the true minimum (skip stale heap entries).
        while True:
            count, victim = heapq.heappop(self._heap)
            if counters.get(victim) == count:
                break
        del counters[victim]
        counters[item] = count + 1
        heapq.heappush(self._heap, (count + 1, item))

    def extend(self, batch: Iterable[Hashable] | np.ndarray) -> None:
        for item in batch:
            item = item.item() if isinstance(item, np.generic) else item
            self.update(item)

    ingest = extend

    def estimate(self, item: Hashable) -> int:
        """Overestimate: f_e <= est <= f_e + εm."""
        return self.counters.get(item, 0)

    def heavy_hitters(self, phi: float) -> dict[Hashable, int]:
        threshold = phi * self.stream_length
        return {e: c for e, c in self.counters.items() if c >= threshold}

    @property
    def space(self) -> int:
        return len(self.counters) + 2

    def merge(self, other: "SpaceSaving") -> None:
        """Fold another Space-Saving summary of the same capacity into
        this one (Cafaro et al.'s parallel merge, PAPERS.md).

        An untracked item's frequency in summary *i* is at most that
        summary's minimum counter (when full), so substituting the
        minimum preserves the one-sided overestimate; summing then
        keeps ``f_e <= ĉ_e <= f_e + ε(m₁+m₂)``, and keeping the top-S
        counters re-establishes the capacity bound.  Ties break
        deterministically on ``repr`` so merge trees are
        order-reproducible.
        """
        if self.capacity != other.capacity:
            raise ValueError(
                f"capacity mismatch: {self.capacity} != {other.capacity}"
            )
        total = len(self.counters) + len(other.counters)
        charge(work=max(1, total), depth=max(1, total))  # sequential baseline
        off_self = (
            min(self.counters.values())
            if len(self.counters) >= self.capacity
            else 0
        )
        off_other = (
            min(other.counters.values())
            if len(other.counters) >= other.capacity
            else 0
        )
        merged = {
            item: self.counters.get(item, off_self)
            + other.counters.get(item, off_other)
            for item in set(self.counters) | set(other.counters)
        }
        if len(merged) > self.capacity:
            ranked = sorted(merged.items(), key=lambda kv: (-kv[1], repr(kv[0])))
            merged = dict(ranked[: self.capacity])
        self.counters = merged
        self._heap = [(count, item) for item, count in merged.items()]
        heapq.heapify(self._heap)
        self.stream_length += other.stream_length

    def fresh_clone(self) -> "SpaceSaving":
        """An empty summary with identical capacity — the per-shard
        accumulator for sharded ingest / merge trees."""
        return type(self)(capacity=self.capacity)


# ----------------------------------------------------------------------
from repro.engine.registry import Capabilities, register  # noqa: E402

register(
    SpaceSaving,
    summary="Space-Saving [MAE06], one-sided overestimates, S counters",
    input="items",
    caps=Capabilities(mergeable=True),
    build=lambda: SpaceSaving(eps=0.1),
    probe=lambda op: [op.estimate(i) for i in range(64)],
)
