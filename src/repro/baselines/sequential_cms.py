"""Item-at-a-time Count-Min sketch [CM05] — sequential baseline for E13.

Same table, same pairwise hashes, same estimator as
:class:`repro.core.ParallelCountMin`, but each arrival updates its d
cells one after another; cost charged with depth = work.  The contrast
the benchmark draws is cost-shape, not accuracy (the two produce
identical tables on identical input order).
"""

from __future__ import annotations

import math
import pickle
from typing import Hashable, Iterable

import numpy as np

from repro.pram.cost import charge
from repro.pram.hashing import KWiseHash, pairwise_hashes

__all__ = ["SequentialCountMin"]


class SequentialCountMin:
    """(ε, δ) Count-Min sketch with per-item sequential updates."""

    def __init__(
        self,
        eps: float,
        delta: float,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0 < eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        rng = rng if rng is not None else np.random.default_rng(0xC0DE)
        self.eps = float(eps)
        self.delta = float(delta)
        self.width = math.ceil(math.e / eps)
        self.depth = max(1, math.ceil(math.log(1.0 / delta)))
        self.table = np.zeros((self.depth, self.width), dtype=np.int64)
        self.hashes: list[KWiseHash] = pairwise_hashes(self.depth, self.width, rng)
        self.stream_length = 0

    def update(self, item: Hashable) -> None:
        key = self._key_of(item)
        charge(work=self.depth, depth=self.depth)  # d sequential cell writes
        for i, h in enumerate(self.hashes):
            self.table[i, h(key)] += 1
        self.stream_length += 1

    def extend(self, batch: Iterable[Hashable] | np.ndarray) -> None:
        for item in batch:
            item = item.item() if isinstance(item, np.generic) else item
            self.update(item)

    ingest = extend

    def point_query(self, item: Hashable) -> int:
        key = self._key_of(item)
        charge(work=self.depth, depth=self.depth)  # sequential min scan
        return int(min(self.table[i, h(key)] for i, h in enumerate(self.hashes)))

    estimate = point_query

    @staticmethod
    def _key_of(item: Hashable) -> int:
        if isinstance(item, (int, np.integer)):
            return int(item)
        return hash(item) & ((1 << 61) - 1)

    @property
    def space(self) -> int:
        return self.table.size + 2 * self.depth

    def merge(self, other: "SequentialCountMin") -> None:
        """Cell-wise addition of a same-hash sketch (mergeable
        summaries, [ACH+13]) — the sequential counterpart of
        :meth:`repro.core.ParallelCountMin.merge`, charged with
        depth = work like every operation of this baseline."""
        if self.table.shape != other.table.shape:
            raise ValueError("sketches must share dimensions to merge")
        for mine, theirs in zip(self.hashes, other.hashes):
            if not np.array_equal(mine.coeffs, theirs.coeffs):
                raise ValueError("sketches must share hash functions to merge")
        charge(work=self.table.size, depth=self.table.size)
        self.table += other.table
        self.stream_length += other.stream_length

    def fresh_clone(self) -> "SequentialCountMin":
        """An empty sketch with identical hash functions — the
        per-shard accumulator for sharded ingest / merge trees."""
        clone = pickle.loads(pickle.dumps(self))
        clone.table[:] = 0
        clone.stream_length = 0
        return clone


# ----------------------------------------------------------------------
from repro.engine.registry import Capabilities, register  # noqa: E402

register(
    SequentialCountMin,
    summary="item-at-a-time Count-Min sketch [CM05], E13 baseline",
    input="items",
    caps=Capabilities(mergeable=True),
    build=lambda: SequentialCountMin(
        eps=0.05, delta=0.1, rng=np.random.default_rng(6)
    ),
    probe=lambda op: [op.point_query(i) for i in range(64)],
)
